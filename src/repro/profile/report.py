"""Turn a span profile into time-attribution tables and Chrome traces.

Two products:

* :func:`profile_report` — a JSON-serializable dict attributing the
  measured wall time to named spans: per-(category, name) rows with
  cumulative and **self** time (duration minus direct children — the
  quantity that sums to the measured wall across a whole profile),
  percentage of total, observed tuples/sec for rule spans, and net
  allocation when memory sampling was on.  ``coverage`` is the
  fraction of wall time attributed to round/rule/stage/plan spans —
  the share of the run the profile actually explains (the rest is
  evaluator scaffolding: ordering, seeding, answer filtering).
* :func:`chrome_trace` — the same spans as a Chrome-trace / Perfetto
  JSON object (``traceEvents`` with ``ph: "X"`` complete events, one
  track per thread).  Load it at https://ui.perfetto.dev or
  ``chrome://tracing`` for flamegraph inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .spans import Span, SpanProfiler

__all__ = ["profile_report", "render_profile", "chrome_trace"]

#: Categories whose self time counts as *attributed* (explained) work.
#: ``evaluate``/``query`` spans are containers: their self time is the
#: scaffolding the profile does not break down further.
ATTRIBUTED_CATS = frozenset({"round", "rule", "stage", "plan"})


def _derived(span: Span) -> int:
    """The span's derived-tuple count; 0 for absent or non-numeric
    ``derived`` meta (callers may attach richer shapes)."""
    value = span.meta.get("derived")
    return value if isinstance(value, int) else 0


def _self_times(spans: Sequence[Span]) -> Dict[int, int]:
    """Self time per span seq: duration minus direct children."""
    child_total: Dict[int, int] = {}
    for span in spans:
        if span.parent is not None:
            child_total[span.parent] = (
                child_total.get(span.parent, 0) + span.duration_ns
            )
    return {
        s.seq: s.duration_ns - child_total.get(s.seq, 0) for s in spans
    }


def profile_report(
    profiler: SpanProfiler, counters=None
) -> Dict[str, object]:
    """Aggregate a profile into per-name and per-predicate tables."""
    spans = profiler.spans()
    wall_ns = sum(s.duration_ns for s in spans if s.parent is None)
    self_ns = _self_times(spans)

    by_name: Dict[tuple, Dict[str, object]] = {}
    by_predicate: Dict[str, Dict[str, object]] = {}
    attributed_ns = 0
    memory = any(s.alloc_bytes is not None for s in spans)
    for span in spans:
        own = self_ns[span.seq]
        if span.cat in ATTRIBUTED_CATS:
            attributed_ns += own
        key = (span.cat, span.name)
        row = by_name.get(key)
        if row is None:
            row = by_name[key] = {
                "cat": span.cat,
                "name": span.name,
                "count": 0,
                "total_ns": 0,
                "self_ns": 0,
                "derived": 0,
            }
            if memory:
                row["alloc_bytes"] = 0
        row["count"] += 1
        row["total_ns"] += span.duration_ns
        row["self_ns"] += own
        row["derived"] += _derived(span)
        if memory and span.alloc_bytes is not None:
            row["alloc_bytes"] += span.alloc_bytes
        predicate = span.meta.get("predicate")
        if span.cat == "rule" and predicate:
            agg = by_predicate.get(predicate)
            if agg is None:
                agg = by_predicate[predicate] = {
                    "predicate": predicate,
                    "count": 0,
                    "total_ns": 0,
                    "self_ns": 0,
                    "derived": 0,
                }
            agg["count"] += 1
            agg["total_ns"] += span.duration_ns
            agg["self_ns"] += own
            agg["derived"] += _derived(span)

    def finish(row: Dict[str, object]) -> Dict[str, object]:
        total_ns = row.pop("total_ns")
        own_ns = row.pop("self_ns")
        row["total_ms"] = total_ns / 1e6
        row["self_ms"] = own_ns / 1e6
        row["self_pct"] = 100.0 * own_ns / wall_ns if wall_ns else 0.0
        derived = row.get("derived", 0)
        row["tuples_per_sec"] = (
            derived / (total_ns / 1e9) if derived and total_ns else None
        )
        return row

    rows = sorted(
        (finish(row) for row in by_name.values()),
        key=lambda r: -r["self_ms"],
    )
    predicates = sorted(
        (finish(row) for row in by_predicate.values()),
        key=lambda r: -r["total_ms"],
    )
    report: Dict[str, object] = {
        "wall_ms": wall_ns / 1e6,
        "spans": len(spans),
        "dropped": profiler.dropped,
        "memory": memory,
        "coverage": attributed_ns / wall_ns if wall_ns else 0.0,
        "rows": rows,
        "predicates": predicates,
    }
    if counters is not None:
        derived = counters.derived_tuples
        report["derived_tuples"] = derived
        report["tuples_per_sec"] = (
            derived / (wall_ns / 1e9) if wall_ns and derived else None
        )
    return report


def _ms(value: float) -> str:
    return f"{value:.3f}"


def render_profile(report: Dict[str, object], limit: int = 20) -> str:
    """The profile report as the text table the CLI and REPL print."""
    lines: List[str] = []
    coverage = 100.0 * float(report.get("coverage", 0.0))
    header = (
        f"profile: wall {report['wall_ms']:.2f}ms over {report['spans']} "
        f"spans ({coverage:.1f}% attributed)"
    )
    if report.get("dropped"):
        header += f" [{report['dropped']} spans dropped]"
    lines.append(header)
    memory = bool(report.get("memory"))
    alloc_col = f" {'alloc':>10}" if memory else ""
    lines.append(
        f"  {'span':<44} {'count':>6} {'total ms':>9} {'self ms':>8} "
        f"{'self %':>6} {'tuples/s':>10}{alloc_col}"
    )
    for row in report["rows"][:limit]:
        name = f"{row['cat']}:{row['name']}"
        if len(name) > 44:
            name = name[:41] + "..."
        tps = row.get("tuples_per_sec")
        alloc = ""
        if memory:
            alloc = f" {row.get('alloc_bytes', 0):>10}"
        lines.append(
            f"  {name:<44} {row['count']:>6} {_ms(row['total_ms']):>9} "
            f"{_ms(row['self_ms']):>8} {row['self_pct']:>6.1f} "
            f"{(f'{tps:,.0f}' if tps else '-'):>10}{alloc}"
        )
    hidden = len(report["rows"]) - limit
    if hidden > 0:
        lines.append(f"  ... {hidden} more span name(s)")
    predicates = report.get("predicates") or []
    if predicates:
        lines.append("per-predicate rule time:")
        for row in predicates:
            tps = row.get("tuples_per_sec")
            lines.append(
                f"  {row['predicate']:<34} {row['count']:>6} firings "
                f"{_ms(row['total_ms']):>9}ms  +{row['derived']} tuples"
                + (f"  ({tps:,.0f} tuples/s)" if tps else "")
            )
    if report.get("tuples_per_sec"):
        lines.append(
            f"throughput: {report['tuples_per_sec']:,.0f} derived tuples/s "
            f"({report.get('derived_tuples', 0)} tuples / "
            f"{report['wall_ms']:.2f}ms)"
        )
    return "\n".join(lines)


def chrome_trace(
    profiler: SpanProfiler, process_name: str = "repro"
) -> Dict[str, object]:
    """The profile as a Chrome-trace / Perfetto ``traceEvents`` object.

    Every span becomes a complete (``ph: "X"``) event with
    microsecond ``ts``/``dur``; threads map to tracks.  The returned
    dict serializes with ``json.dumps(..., allow_nan=False)`` and loads
    directly in https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in profiler.spans():
        args: Dict[str, object] = dict(span.meta)
        if span.alloc_bytes is not None:
            args["alloc_bytes"] = span.alloc_bytes
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_ns / 1e3,
                "dur": span.duration_ns / 1e3,
                "pid": 1,
                "tid": span.thread,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.profile",
            "started_at": profiler.started_at,
            "dropped_spans": profiler.dropped,
        },
    }

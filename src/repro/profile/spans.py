"""The span profiler: wall-clock (and optional allocation) attribution.

PR 3's tracer answers *what happened* in tuples — deltas, probes,
expansion ratios.  This module answers *where the time went*: a
:class:`SpanProfiler` records **spans** — named, nested intervals
timed with :func:`time.perf_counter_ns` — around every fixpoint round,
per-rule body evaluation, chain-evaluation phase and planner phase.
The discipline mirrors the tracer exactly:

* every evaluator accepts ``profiler=None`` (the default); the disabled
  path costs only ``is not None`` branches and the derived relations
  and work counters are bit-identical with the profiler off, on, or
  memory-sampling (``tests/profile/test_parity.py`` pins that down);
* an enabled profiler records into a bounded in-memory buffer behind a
  lock, with per-thread open-span stacks so server threads nest
  independently.

Span categories (the ``cat`` field):

==========  ==========================================================
``evaluate``  one evaluator run (``semi_naive``, ``buffered_chain``,
              ``counting``, ``partial_chain``, ``magic_sets``)
``round``     one semi-naive fixpoint round
``rule``      one rule-variant body evaluation (meta: slot, derived,
              duplicates)
``stage``     one chain-evaluation phase: a down/descent level, the
              exit phase, the up phase
``plan``      a planner phase (strategy selection, magic rewrite)
``query``     the service layer's whole-request span
==========  ==========================================================

With ``memory=True`` the profiler samples :mod:`tracemalloc` at span
boundaries and records the *net* allocation delta per span
(``alloc_bytes``; negative when the span freed more than it
allocated).  Memory sampling is markedly more expensive than timing —
it is opt-in per profiler, never ambient.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "SpanProfiler"]


@dataclass
class Span:
    """One closed interval of attributed work."""

    #: Monotone id, assigned when the span *closes* (children close
    #: before parents, so ids are a valid bottom-up traversal order).
    seq: int
    cat: str
    name: str
    #: Start, relative to the profiler's construction (ns).
    start_ns: int
    duration_ns: int
    #: Nesting depth within this thread's span stack (0 = root).
    depth: int
    #: ``seq`` of the enclosing span, or None for a root span.  Filled
    #: when the parent closes — readers should resolve it lazily.
    parent: Optional[int]
    thread: int
    #: Net tracemalloc delta over the span; None without memory sampling.
    alloc_bytes: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "cat": self.cat,
            "name": self.name,
            "start_us": self.start_ns / 1e3,
            "duration_us": self.duration_ns / 1e3,
            "depth": self.depth,
            "parent": self.parent,
            "thread": self.thread,
        }
        if self.alloc_bytes is not None:
            out["alloc_bytes"] = self.alloc_bytes
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


class _OpenSpan:
    """A begun-but-not-ended span on a thread's stack."""

    __slots__ = ("cat", "name", "start_ns", "start_alloc", "children")

    def __init__(self, cat: str, name: str, start_ns: int, start_alloc):
        self.cat = cat
        self.name = name
        self.start_ns = start_ns
        self.start_alloc = start_alloc
        #: Closed direct children, waiting for their parent link.
        self.children: List[Span] = []


class SpanProfiler:
    """Record nested timing spans with near-zero per-span cost.

    Usage (the evaluators use explicit begin/end so early exits can
    close spans in ``finally`` blocks)::

        profiler = SpanProfiler()
        token = profiler.begin("round", "round 1")
        ...
        profiler.end(token, derived=42)

    ``capacity`` bounds memory: when the buffer is full, further
    *closed* spans are counted in :attr:`dropped` instead of stored
    (newest-dropped, unlike the tracer's ring — a profile without its
    roots is unreadable, a truncated tail is).  ``memory=True`` turns
    on tracemalloc sampling; if tracemalloc was not already tracing,
    the profiler starts it and :meth:`close` stops it again.
    """

    def __init__(self, capacity: int = 100_000, memory: bool = False):
        if capacity < 1:
            raise ValueError("profiler capacity must be positive")
        self.capacity = capacity
        self.memory = memory
        self.dropped = 0
        self._spans: List[Span] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._origin_ns = time.perf_counter_ns()
        #: Wall-clock epoch of construction (chrome traces and slowlog
        #: entries want an absolute anchor next to the relative spans).
        self.started_at = time.time()
        self._owns_tracemalloc = False
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, cat: str, name: str) -> _OpenSpan:
        """Open a span; returns the token :meth:`end` expects."""
        alloc = None
        if self.memory:
            import tracemalloc

            alloc = tracemalloc.get_traced_memory()[0]
        token = _OpenSpan(
            cat, name, time.perf_counter_ns() - self._origin_ns, alloc
        )
        self._stack().append(token)
        return token

    def end(self, token: _OpenSpan, **meta: object) -> Optional[Span]:
        """Close the span ``token``; ``meta`` lands on the span.

        Spans must close innermost-first per thread; closing a token
        that is not the top of this thread's stack unwinds (and closes)
        everything above it, so an exception path that skips inner
        ``end`` calls still yields a consistent profile.
        """
        end_ns = time.perf_counter_ns() - self._origin_ns
        alloc_delta = None
        if self.memory:
            import tracemalloc

            current = tracemalloc.get_traced_memory()[0]
            if token.start_alloc is not None:
                alloc_delta = current - token.start_alloc
        stack = self._stack()
        if token not in stack:
            return None  # already closed by an unwind
        while stack and stack[-1] is not token:
            self._close(stack, stack[-1], end_ns, None)
        return self._close(stack, token, end_ns, alloc_delta, meta)

    def _close(
        self,
        stack: List[_OpenSpan],
        token: _OpenSpan,
        end_ns: int,
        alloc_delta: Optional[int],
        meta: Optional[Dict[str, object]] = None,
    ) -> Optional[Span]:
        stack.pop()
        depth = len(stack)
        with self._lock:
            self._seq += 1
            seq = self._seq
            span = Span(
                seq=seq,
                cat=token.cat,
                name=token.name,
                start_ns=token.start_ns,
                duration_ns=end_ns - token.start_ns,
                depth=depth,
                parent=None,
                thread=threading.get_ident(),
                alloc_bytes=alloc_delta,
                meta=dict(meta) if meta else {},
            )
            if len(self._spans) < self.capacity:
                self._spans.append(span)
                recorded = True
            else:
                self.dropped += 1
                recorded = False
        for child in token.children:
            child.parent = seq
        if stack:
            stack[-1].children.append(span)
        return span if recorded else None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def spans(self, cat: Optional[str] = None) -> List[Span]:
        """Closed spans (in closing order); optionally one category."""
        with self._lock:
            snapshot = list(self._spans)
        if cat is None:
            return snapshot
        return [s for s in snapshot if s.cat == cat]

    def __len__(self) -> int:
        return len(self._spans)

    def total_ns(self) -> int:
        """Measured wall time: the summed duration of root spans."""
        return sum(s.duration_ns for s in self.spans() if s.parent is None)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "memory": self.memory,
            "started_at": self.started_at,
            "spans": [s.as_dict() for s in self.spans()],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release resources: stops tracemalloc if this profiler
        started it.  Idempotent; reading remains valid afterwards."""
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False

    def __enter__(self) -> "SpanProfiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""File I/O: programs from ``.pl`` files, facts from CSV/TSV.

Real deployments keep rules in source files and data in delimited
files; these helpers bridge both into a :class:`Database`.  CSV values
are type-inferred (int, float, else string) so ``travel`` fares load as
numbers without a schema.
"""

from __future__ import annotations

import csv
import warnings
from typing import IO, Iterable, List, Optional, Sequence, Union

from ..datalog.terms import Const, Term
from .database import Database
from .relation import Relation

__all__ = [
    "load_program_file",
    "load_facts_csv",
    "save_facts_csv",
    "save_database",
    "load_database",
    "infer_constant",
]

PathOrFile = Union[str, IO[str]]


def infer_constant(text: str) -> Const:
    """Parse a CSV cell: int, then float, else string."""
    stripped = text.strip()
    try:
        return Const(int(stripped))
    except ValueError:
        pass
    try:
        return Const(float(stripped))
    except ValueError:
        pass
    return Const(stripped)


def load_program_file(database: Database, path: str) -> None:
    """Load a Prolog-style source file into ``database``.

    Parse errors are re-raised with the file path prepended, so a
    multi-file load names the offending file, not just the clause.
    """
    with open(path) as handle:
        source = handle.read()
    try:
        database.load_source(source)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def load_facts_csv(
    database: Database,
    source: PathOrFile,
    predicate: str,
    delimiter: str = ",",
    skip_header: bool = False,
    strict: bool = True,
) -> int:
    """Load rows of a delimited file as facts of ``predicate``.

    Returns the number of new facts.  All rows must have the same
    number of columns; under ``strict`` (the default) a
    :class:`ValueError` pinpoints the offending ``file:line:column``,
    while ``strict=False`` skips bad rows with a :class:`UserWarning`
    carrying the same location — bulk loads of dirty data keep going.
    """
    owns_handle = isinstance(source, str)
    handle = open(source) if owns_handle else source
    filename = source if owns_handle else getattr(handle, "name", "<stream>")
    try:
        reader = csv.reader(handle, delimiter=delimiter)
        added = 0
        arity: Optional[int] = None
        row_number = 0
        while True:
            try:
                row = next(reader)
            except StopIteration:
                break
            except csv.Error as exc:
                message = f"{filename}:{reader.line_num}: malformed row: {exc}"
                if strict:
                    raise ValueError(message) from exc
                warnings.warn(message)
                continue
            row_number += 1
            if skip_header and row_number == 1:
                continue
            if not row:
                continue
            if arity is None:
                arity = len(row)
            if len(row) != arity:
                # Column where the shape diverges: one past the last
                # expected cell for long rows, one past the last
                # present cell for short ones.
                column = min(len(row), arity) + 1
                message = (
                    f"{filename}:{reader.line_num}:{column}: "
                    f"expected {arity} columns, got {len(row)}"
                )
                if strict:
                    raise ValueError(message)
                warnings.warn(message)
                continue
            values = tuple(infer_constant(cell) for cell in row)
            if database.relation(predicate, arity).add(values):
                added += 1
        return added
    finally:
        if owns_handle:
            handle.close()


def save_facts_csv(
    database: Database,
    target: PathOrFile,
    predicate: str,
    arity: int,
    delimiter: str = ",",
) -> int:
    """Write the facts of ``predicate/arity`` to a delimited file.

    Rows are written in sorted order for reproducible diffs.  Compound
    terms are serialized with the parser-compatible syntax, so a
    round-trip through :func:`load_facts_csv` preserves constants
    (compound terms come back as strings — CSV is for flat data).
    """
    from ..datalog.literals import Predicate

    relation = database.get(Predicate(predicate, arity))
    if relation is None:
        relation = Relation(predicate, arity)
    owns_handle = isinstance(target, str)
    handle = open(target, "w", newline="") if owns_handle else target
    try:
        writer = csv.writer(handle, delimiter=delimiter)
        count = 0
        for row in sorted(relation.rows(), key=str):
            writer.writerow([_cell(value) for value in row])
            count += 1
        return count
    finally:
        if owns_handle:
            handle.close()


def _cell(value: Term) -> str:
    if isinstance(value, Const):
        return str(value.value)
    return str(value)


def save_database(database: Database, directory: str) -> None:
    """Persist a database to a directory: ``program.pl`` with the IDB
    rules plus one ``<predicate>.<arity>.csv`` per stored relation.

    Only flat (constant) relations round-trip exactly; relations with
    compound terms are refused rather than silently corrupted.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "program.pl"), "w") as handle:
        handle.write(str(database.program))
        handle.write("\n")
    for predicate, relation in sorted(
        database.relations.items(), key=lambda kv: str(kv[0])
    ):
        for row in relation:
            for value in row:
                if not isinstance(value, Const):
                    raise ValueError(
                        f"relation {predicate} holds compound terms; "
                        "CSV persistence covers flat relations only"
                    )
        path = os.path.join(
            directory, f"{predicate.name}.{predicate.arity}.csv"
        )
        save_facts_csv(database, path, predicate.name, predicate.arity)


def load_database(directory: str) -> Database:
    """Load a database saved by :func:`save_database`."""
    import os
    import re

    database = Database()
    program_path = os.path.join(directory, "program.pl")
    if os.path.exists(program_path):
        load_program_file(database, program_path)
    pattern = re.compile(r"^(?P<name>.+)\.(?P<arity>\d+)\.csv$")
    for entry in sorted(os.listdir(directory)):
        match = pattern.match(entry)
        if match is None:
            continue
        name = match.group("name")
        arity = int(match.group("arity"))
        # Pre-create so empty files still register the relation.
        database.relation(name, arity)
        load_facts_csv(database, os.path.join(directory, entry), name)
    return database

"""Top-down (SLD) evaluation with optional delayed goal selection.

Functional recursions (``isort``, ``qsort``, ``nqueens``) are evaluated
top-down.  The evaluator supports two goal-selection policies:

* ``"leftmost"`` — textbook Prolog selection.  On a body whose chain
  generating path contains a functional predicate that is not yet
  evaluable (e.g. ``cons(X1, W1, W)`` with both ``X1`` and ``W1`` free
  in ``append^bbf``), this policy *fails finitely-evaluability*: the
  builtin raises :class:`NotFinitelyEvaluable`.
* ``"deferred"`` — the operational core of chain-split evaluation: the
  leftmost *ready* goal is selected and non-ready functional goals are
  delayed until their arguments become bound.  This is precisely the
  paper's split of a chain generating path into an immediately
  evaluable portion and a delayed-evaluation portion, applied
  dynamically per resolution step.

A step budget turns nontermination into a :class:`BudgetExceeded`
exception so benchmarks can demonstrate divergence safely.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.parser import parse_query
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term, Var, fresh_variable_factory, is_ground, term_variables
from ..datalog.unify import Substitution, apply_substitution, unify_sequences
from ..resilience.budget import Budget, BudgetExceeded
from .builtins import BuiltinError, BuiltinRegistry, default_registry
from .counters import Counters
from .database import Database
from .joins import literal_solutions
from .relation import Relation

__all__ = [
    "TopDownEvaluator",
    "BudgetExceeded",
    "NotFinitelyEvaluable",
]


class NotFinitelyEvaluable(RuntimeError):
    """A functional goal was selected under a mode with infinitely many
    solutions — the situation chain-split evaluation exists to avoid."""


@contextmanager
def _recursion_headroom(limit: int = 1_000_000):
    old = sys.getrecursionlimit()
    if old < limit:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


class TopDownEvaluator:
    """SLD resolution over a :class:`Database`.

    Parameters
    ----------
    database:
        EDB relations + IDB rules.
    registry:
        Builtin registry (defaults to the standard one).
    max_steps:
        Resolution-step budget; exceeded → :class:`BudgetExceeded`.
    selection:
        ``"leftmost"`` or ``"deferred"`` (chain-split) goal selection.
    budget:
        Optional :class:`~repro.resilience.Budget` checked once per
        resolution step.  SLD resolution has no fixpoint rounds, so
        ``max_rounds`` bounds resolution steps here.
    """

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_steps: int = 5_000_000,
        selection: str = "deferred",
        budget: Optional[Budget] = None,
    ):
        if selection not in {"leftmost", "deferred"}:
            raise ValueError("selection must be 'leftmost' or 'deferred'")
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.max_steps = max_steps
        self.selection = selection
        self.budget = budget
        self.counters = Counters()
        self._fresh = fresh_variable_factory("_R")
        self._steps = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(
        self, goals: Sequence[Literal], subst: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate solutions of a conjunctive goal list."""
        self._steps = 0
        with _recursion_headroom():
            yield from self._solve(list(goals), dict(subst or {}))

    def query(self, source: str) -> List[Dict[str, Term]]:
        """Parse and run a query; return bindings of the query's own
        variables (one dict per solution, deduplicated, in order)."""
        goals = parse_query(source)
        names: List[str] = []
        seen: Set[str] = set()
        for goal in goals:
            for var in goal.variables():
                if var.name not in seen:
                    seen.add(var.name)
                    names.append(var.name)
        answers: List[Dict[str, Term]] = []
        answer_keys: Set[Tuple[Tuple[str, Term], ...]] = set()
        for solution in self.solve(goals):
            binding = {
                name: apply_substitution(Var(name), solution) for name in names
            }
            key = tuple(sorted(binding.items(), key=lambda kv: kv[0]))
            if key not in answer_keys:
                answer_keys.add(key)
                answers.append(binding)
        return answers

    def ask(self, source: str) -> bool:
        """True when the query has at least one solution."""
        goals = parse_query(source)
        for _ in self.solve(goals):
            return True
        return False

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise BudgetExceeded(
                f"exceeded {self.max_steps} resolution steps",
                reason="steps",
                limit=self.max_steps,
                observed=self._steps,
                counters=self.counters.as_dict(),
            )
        budget = self.budget
        if budget is not None:
            budget.tick(self.counters)
            if budget.max_rounds is not None and self._steps > budget.max_rounds:
                budget.check_round(self._steps, self.counters)

    def _select(self, goals: List[Literal], subst: Substitution) -> int:
        """Index of the goal to resolve next under the active policy."""
        if self.selection == "leftmost" or len(goals) == 1:
            return 0
        first_user: Optional[int] = None
        for index, goal in enumerate(goals):
            if goal.negated:
                if all(
                    is_ground(apply_substitution(a, subst)) for a in goal.args
                ):
                    return index
                continue
            builtin = self.registry.get(goal.predicate)
            if builtin is not None:
                bound = frozenset(
                    i
                    for i, arg in enumerate(goal.args)
                    if is_ground(apply_substitution(arg, subst))
                )
                if builtin.is_finite_under(bound):
                    # A ready functional goal binds or filters
                    # deterministically — always run it before
                    # expanding a user predicate.
                    return index
                continue
            if first_user is None:
                first_user = index
        if first_user is not None:
            return first_user
        # Only non-ready builtins/negations remain: floundering.
        stuck = ", ".join(str(g.substitute(subst)) for g in goals)
        raise NotFinitelyEvaluable(f"all remaining goals floundered: {stuck}")

    def _solve(self, goals: List[Literal], subst: Substitution) -> Iterator[Substitution]:
        if not goals:
            yield subst
            return
        self._tick()
        index = self._select(goals, subst)
        goal = goals[index]
        rest = goals[:index] + goals[index + 1 :]

        if goal.negated:
            ground_args = [apply_substitution(a, subst) for a in goal.args]
            if any(not is_ground(a) for a in ground_args):
                raise NotFinitelyEvaluable(
                    f"negated goal {goal} selected with unbound arguments"
                )
            positive = goal.positive().with_args(ground_args)
            for _ in self._solve([positive], dict(subst)):
                return
            yield from self._solve(rest, subst)
            return

        builtin = self.registry.get(goal.predicate)
        if builtin is not None:
            self.counters.builtin_evals += 1
            try:
                solutions = list(builtin.solve(goal.args, subst))
            except BuiltinError as exc:
                raise NotFinitelyEvaluable(str(exc)) from exc
            for solution in solutions:
                yield from self._solve(rest, solution)
            return

        relation = self.database.get(goal.predicate)
        if relation is not None:
            for solution in literal_solutions(goal, relation, subst, self.counters):
                yield from self._solve(rest, solution)

        for rule in self.database.program.rules_for(goal.predicate):
            variant = rule.rename_apart(self._fresh)
            unified = unify_sequences(variant.head.args, goal.args, subst)
            if unified is None:
                continue
            self.counters.intermediate_tuples += 1
            yield from self._solve(list(variant.body) + rest, unified)

"""In-memory relations with incrementally maintained hash indexes.

A :class:`Relation` stores ground tuples of :class:`~repro.datalog.terms.Term`
values.  Every evaluator in this library — semi-naive, magic sets,
counting, buffered and partial chain-split evaluation — reads and
writes relations through this class, so the cost comparisons between
strategies are apples-to-apples.

Rows are kept in an append-only insertion log alongside a membership
dict, which gives every relation a *generation* structure for free:
:meth:`mark` captures the current log position, and :meth:`window`
returns a read-only view of the rows inserted inside a log interval.
Semi-naive evaluation uses those windows as its pre-round, delta and
frozen-full relation versions — no per-round copies, and the base
relation's indexes serve every window.

Indexes map a column subset to a hash table from key tuples to the
(ascending) log positions of matching rows.  They are built on first
use and maintained incrementally ever after: an insert appends its
position to the affected buckets, and a :meth:`discard` removes the
row's position from the affected buckets only — no wholesale
invalidation, so long-lived relations (a serving session's EDB) keep
their indexes across mutations.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..datalog.terms import Const, Term, is_ground

__all__ = ["OverlayRelation", "Relation", "RelationWindow", "Row", "wrap_term"]

Row = Tuple[Term, ...]


class Relation:
    """A named set of equal-arity ground tuples."""

    def __init__(self, name: str, arity: int, rows: Iterable[Row] = ()):
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        #: row -> position in the insertion log.
        self._rows: Dict[Row, int] = {}
        #: insertion log; ``None`` marks a discarded row (tombstone).
        self._order: List[Optional[Row]] = []
        #: columns -> key -> ascending log positions of matching rows.
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Term, ...], List[int]]] = {}
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Sequence[Term]) -> bool:
        """Insert ``row``; returns True when it was new."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"arity mismatch inserting into {self.name}/{self.arity}: {row}"
            )
        for value in row:
            if not is_ground(value):
                raise ValueError(f"non-ground value {value} inserted into {self.name}")
        if row in self._rows:
            return False
        position = len(self._order)
        self._rows[row] = position
        self._order.append(row)
        for columns, index in self._indexes.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, []).append(position)
        return True

    def add_all(self, rows: Iterable[Sequence[Term]]) -> int:
        """Insert many rows; returns the number actually new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: Sequence[Term]) -> bool:
        """Remove ``row`` if present; returns True when removed.

        Surgical: the row's position is removed from the affected
        bucket of each live index; the indexes themselves survive.
        """
        row = tuple(row)
        position = self._rows.pop(row, None)
        if position is None:
            return False
        self._order[position] = None
        for columns, index in self._indexes.items():
            key = tuple(row[c] for c in columns)
            bucket = index.get(key)
            if bucket is None:
                continue
            slot = bisect_left(bucket, position)
            if slot < len(bucket) and bucket[slot] == position:
                del bucket[slot]
            if not bucket:
                del index[key]
        return True

    def clear(self) -> None:
        self._rows.clear()
        self._order.clear()
        self._indexes.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, row: Sequence[Term]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> AbstractSet[Row]:
        """The underlying row set (do not mutate)."""
        return self._rows.keys()

    def mark(self) -> int:
        """The current insertion-log position (a generation stamp for
        :meth:`window`)."""
        return len(self._order)

    def window(self, lo: int = 0, hi: Optional[int] = None) -> "RelationWindow":
        """A read-only view of the rows inserted at log positions
        ``[lo, hi)`` (``hi=None`` — the current end)."""
        return RelationWindow(self, lo, self.mark() if hi is None else hi)

    def lookup(
        self,
        columns: Sequence[int],
        key: Sequence[Term],
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> List[Row]:
        """Rows whose projection on ``columns`` equals ``key``, restricted
        to insertion-log positions ``[lo, hi)``.

        Builds (and caches) a hash index on ``columns`` on first use.
        ``columns`` may be empty, in which case all rows in the window
        match.
        """
        columns = tuple(columns)
        if not columns:
            if lo == 0 and hi is None:
                return list(self._rows)
            end = len(self._order) if hi is None else hi
            return [row for row in self._order[lo:end] if row is not None]
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for position, row in enumerate(self._order):
                if row is None:
                    continue
                index_key = tuple(row[c] for c in columns)
                index.setdefault(index_key, []).append(position)
            self._indexes[columns] = index
        bucket = index.get(tuple(key))
        if not bucket:
            return []
        order = self._order
        if lo == 0 and hi is None:
            return [order[p] for p in bucket]
        start = bisect_left(bucket, lo)
        end = bisect_left(bucket, len(order) if hi is None else hi)
        return [order[p] for p in bucket[start:end]]

    def project(self, columns: Sequence[int]) -> "Relation":
        """A new relation holding the (deduplicated) projection."""
        result = Relation(f"{self.name}_proj", len(columns))
        for row in self._rows:
            result.add(tuple(row[c] for c in columns))
        return result

    def select(self, predicate) -> "Relation":
        """A new relation holding rows satisfying ``predicate(row)``."""
        result = Relation(f"{self.name}_sel", self.arity)
        for row in self._rows:
            if predicate(row):
                result.add(row)
        return result

    def copy(self, name: Optional[str] = None) -> "Relation":
        result = Relation(name or self.name, self.arity)
        result._order = [row for row in self._order if row is not None]
        result._rows = {row: i for i, row in enumerate(result._order)}
        return result

    def column_values(self, column: int) -> Set[Term]:
        """Distinct values appearing in ``column``."""
        return {row[column] for row in self._rows}

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, name: str, pairs: Iterable[Tuple[object, object]]) -> "Relation":
        """Build a binary relation from Python value pairs.

        Plain Python values are wrapped in :class:`Const`; terms pass
        through unchanged.
        """
        relation = cls(name, 2)
        for a, b in pairs:
            relation.add((wrap_term(a), wrap_term(b)))
        return relation

    @classmethod
    def from_tuples(cls, name: str, arity: int, tuples: Iterable[Sequence[object]]) -> "Relation":
        """Build a relation from iterables of Python values or terms."""
        relation = cls(name, arity)
        for values in tuples:
            relation.add(tuple(wrap_term(v) for v in values))
        return relation

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self._rows)} rows)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self.arity == other.arity
            and self._rows.keys() == other._rows.keys()
        )

    def __hash__(self):  # relations are mutable containers
        raise TypeError("Relation is unhashable")


class RelationWindow:
    """A read-only view of one insertion-log interval of a
    :class:`Relation`.

    Exposes the subset of the relation API the join machinery consumes
    (:meth:`lookup`, membership, iteration, ``len``) and shares the
    base relation's indexes — probing a window bisects the base
    buckets instead of building per-window structures.  Semi-naive
    evaluation hands these views to :func:`~repro.engine.joins.evaluate_body`
    as its pre-round, delta and frozen-full relation versions; rows
    appended to the base after the window was taken stay invisible.
    """

    __slots__ = ("base", "lo", "hi")

    def __init__(self, base: Relation, lo: int, hi: int):
        self.base = base
        self.lo = lo
        self.hi = hi

    @property
    def name(self) -> str:
        return f"{self.base.name}[{self.lo}:{self.hi}]"

    @property
    def arity(self) -> int:
        return self.base.arity

    def lookup(self, columns: Sequence[int], key: Sequence[Term]) -> List[Row]:
        return self.base.lookup(columns, key, self.lo, self.hi)

    def rows(self) -> Set[Row]:
        return set(self)

    def __contains__(self, row: Sequence[Term]) -> bool:
        position = self.base._rows.get(tuple(row))
        return position is not None and self.lo <= position < self.hi

    def __iter__(self) -> Iterator[Row]:
        for row in self.base._order[self.lo : self.hi]:
            if row is not None:
                yield row

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return f"RelationWindow({self.name!r}/{self.arity}, {len(self)} rows)"


class OverlayRelation:
    """A read-only union of a relation-like base and a small extra set.

    Incremental maintenance needs to evaluate rule bodies against a
    state the stored relations no longer hold: DRed's over-deletion
    joins run against the *pre-batch* state after retracted rows have
    already been tombstoned, and counting deletion needs the pre-batch
    view of every touched relation.  Rather than copying relations,
    the maintainer overlays the already-removed rows back on top of the
    (mutated) base.

    Exposes only what :func:`~repro.engine.joins.evaluate_body`
    consumes: :meth:`lookup`, membership, iteration and ``len``.  Rows
    present in both base and extra are reported once — but callers
    should keep the two disjoint (they are, by construction: ``extra``
    holds exactly the rows no longer visible through ``base``).
    """

    __slots__ = ("base", "extra")

    def __init__(self, base, extra: Relation):
        self.base = base
        self.extra = extra

    @property
    def name(self) -> str:
        return f"{getattr(self.base, 'name', '?')}+overlay"

    @property
    def arity(self) -> int:
        return self.base.arity

    def lookup(self, columns: Sequence[int], key: Sequence[Term]) -> List[Row]:
        rows = list(self.base.lookup(columns, key))
        for row in self.extra.lookup(columns, key):
            if row not in self.base:
                rows.append(row)
        return rows

    def rows(self) -> Set[Row]:
        return set(self)

    def __contains__(self, row: Sequence[Term]) -> bool:
        return row in self.base or row in self.extra

    def __iter__(self) -> Iterator[Row]:
        for row in self.base:
            yield row
        for row in self.extra:
            if row not in self.base:
                yield row

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return f"OverlayRelation({self.name!r}/{self.arity}, {len(self)} rows)"


def wrap_term(value: object) -> Term:
    """Wrap a plain Python value as a ground term (terms pass through)."""
    if isinstance(value, Term):
        return value
    if isinstance(value, (str, int, float, bool)):
        return Const(value)
    raise TypeError(f"cannot wrap {value!r} as a term")

"""In-memory relations with lazily built hash indexes.

A :class:`Relation` stores ground tuples of :class:`~repro.datalog.terms.Term`
values.  Every evaluator in this library — semi-naive, magic sets,
counting, buffered and partial chain-split evaluation — reads and
writes relations through this class, so the cost comparisons between
strategies are apples-to-apples.

Indexes map a column subset to a hash table from key tuples to the
matching rows.  They are built on first use and invalidated wholesale
on mutation; fixpoint evaluators mutate in generations, so in practice
an index is rebuilt at most once per generation.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..datalog.terms import Const, Term, is_ground

__all__ = ["Relation", "Row", "wrap_term"]

Row = Tuple[Term, ...]


class Relation:
    """A named set of equal-arity ground tuples."""

    def __init__(self, name: str, arity: int, rows: Iterable[Row] = ()):
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self._rows: Set[Row] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Row, List[Row]]] = {}
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Sequence[Term]) -> bool:
        """Insert ``row``; returns True when it was new."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"arity mismatch inserting into {self.name}/{self.arity}: {row}"
            )
        for value in row:
            if not is_ground(value):
                raise ValueError(f"non-ground value {value} inserted into {self.name}")
        if row in self._rows:
            return False
        self._rows.add(row)
        for columns, index in self._indexes.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, []).append(row)
        return True

    def add_all(self, rows: Iterable[Sequence[Term]]) -> int:
        """Insert many rows; returns the number actually new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: Sequence[Term]) -> bool:
        """Remove ``row`` if present; returns True when removed."""
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._indexes.clear()
        return True

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, row: Sequence[Term]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Set[Row]:
        """The underlying row set (do not mutate)."""
        return self._rows

    def lookup(self, columns: Sequence[int], key: Sequence[Term]) -> List[Row]:
        """Rows whose projection on ``columns`` equals ``key``.

        Builds (and caches) a hash index on ``columns`` on first use.
        ``columns`` may be empty, in which case all rows match.
        """
        columns = tuple(columns)
        if not columns:
            return list(self._rows)
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for row in self._rows:
                index_key = tuple(row[c] for c in columns)
                index.setdefault(index_key, []).append(row)
            self._indexes[columns] = index
        return index.get(tuple(key), [])

    def project(self, columns: Sequence[int]) -> "Relation":
        """A new relation holding the (deduplicated) projection."""
        result = Relation(f"{self.name}_proj", len(columns))
        for row in self._rows:
            result.add(tuple(row[c] for c in columns))
        return result

    def select(self, predicate) -> "Relation":
        """A new relation holding rows satisfying ``predicate(row)``."""
        result = Relation(f"{self.name}_sel", self.arity)
        for row in self._rows:
            if predicate(row):
                result.add(row)
        return result

    def copy(self, name: Optional[str] = None) -> "Relation":
        result = Relation(name or self.name, self.arity)
        result._rows = set(self._rows)
        return result

    def column_values(self, column: int) -> Set[Term]:
        """Distinct values appearing in ``column``."""
        return {row[column] for row in self._rows}

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, name: str, pairs: Iterable[Tuple[object, object]]) -> "Relation":
        """Build a binary relation from Python value pairs.

        Plain Python values are wrapped in :class:`Const`; terms pass
        through unchanged.
        """
        relation = cls(name, 2)
        for a, b in pairs:
            relation.add((wrap_term(a), wrap_term(b)))
        return relation

    @classmethod
    def from_tuples(cls, name: str, arity: int, tuples: Iterable[Sequence[object]]) -> "Relation":
        """Build a relation from iterables of Python values or terms."""
        relation = cls(name, arity)
        for values in tuples:
            relation.add(tuple(wrap_term(v) for v in values))
        return relation

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self._rows)} rows)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self.arity == other.arity
            and self._rows == other._rows
        )

    def __hash__(self):  # relations are mutable containers
        raise TypeError("Relation is unhashable")


def wrap_term(value: object) -> Term:
    """Wrap a plain Python value as a ground term (terms pass through)."""
    if isinstance(value, Term):
        return value
    if isinstance(value, (str, int, float, bool)):
        return Const(value)
    raise TypeError(f"cannot wrap {value!r} as a term")

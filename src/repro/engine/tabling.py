"""Tabled top-down evaluation (SLG-style memoization, simplified).

Plain SLD resolution loops on left-recursive programs
(``anc(X,Y) :- anc(X,Z), parent(Z,Y)``) and re-derives shared subgoals
exponentially often on DAG-shaped data.  Tabling fixes both: each
*call pattern* (predicate + argument instantiation, variables
canonicalized) gets one table of answers; repeated calls consume the
table instead of re-deriving.

This implementation restricts itself to what the library needs — the
function-free and constructor-based programs of the paper — and uses a
simple iterate-to-fixpoint scheduling (no suspension machinery): rules
for tabled subgoals are re-run until no table grows.  That is less
incremental than full SLG-WAM resolution but is sound, complete for
definite programs with finite answer sets, and terminates on
left-recursion.

Builtins and negation are handled as in :class:`TopDownEvaluator`:
builtins must be evaluable when selected (deferred selection delays
them), and negation is stratified negation-as-failure over completed
tables.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.parser import parse_query
from ..datalog.rules import Rule
from ..datalog.terms import Term, Var, fresh_variable_factory, is_ground
from ..datalog.unify import (
    Substitution,
    apply_substitution,
    unify,
    unify_sequences,
)
from .builtins import BuiltinError, BuiltinRegistry, default_registry
from .counters import Counters
from .database import Database
from .joins import literal_solutions
from .relation import Relation
from .topdown import NotFinitelyEvaluable, _recursion_headroom

__all__ = ["TabledEvaluator"]

#: A call pattern: predicate plus arguments with variables replaced by
#: canonical placeholders (so ``anc(X, Y)`` and ``anc(A, B)`` share a
#: table but ``anc(a, Y)`` gets its own).
CallKey = Tuple[Predicate, Tuple[object, ...]]


def _canonical(args: Sequence[Term]) -> Tuple[Tuple[object, ...], List[Term]]:
    """Canonicalize a goal's arguments: ground subterms stay, variables
    become position-indexed placeholders.  Returns the hashable key and
    the generalized argument list used to run the call."""
    mapping: Dict[str, int] = {}
    key_parts: List[object] = []
    general: List[Term] = []

    def canon(term: Term) -> Tuple[object, Term]:
        if is_ground(term):
            return term, term
        if isinstance(term, Var):
            if term.name not in mapping:
                mapping[term.name] = len(mapping)
            index = mapping[term.name]
            return ("var", index), Var(f"_Tab{index}")
        # Partially instantiated structure: canonicalize recursively.
        from ..datalog.terms import Struct

        assert isinstance(term, Struct)
        parts = []
        new_args = []
        for arg in term.args:
            part, new_arg = canon(arg)
            parts.append(part)
            new_args.append(new_arg)
        return (term.functor, tuple(parts)), Struct(term.functor, new_args)

    for arg in args:
        part, new_arg = canon(arg)
        key_parts.append(part)
        general.append(new_arg)
    return tuple(key_parts), general


class _Table:
    """Answers for one call pattern."""

    __slots__ = ("general_args", "answers", "complete")

    def __init__(self, general_args: List[Term]):
        self.general_args = general_args
        self.answers: Set[Tuple[Term, ...]] = set()
        self.complete = False


class TabledEvaluator:
    """Top-down evaluation with call-pattern tabling.

    API mirrors :class:`~repro.engine.topdown.TopDownEvaluator`:
    ``solve`` / ``query`` / ``ask``.
    """

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_rounds: int = 10_000,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.max_rounds = max_rounds
        self.counters = Counters()
        self._tables: Dict[CallKey, _Table] = {}
        self._fresh = fresh_variable_factory("_TR")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(
        self, goals: Sequence[Literal], subst: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate solutions of a conjunctive goal list."""
        with _recursion_headroom():
            self._saturate(list(goals), dict(subst or {}))
            yield from self._answers_for(list(goals), dict(subst or {}))

    def query(self, source: str) -> List[Dict[str, Term]]:
        goals = parse_query(source)
        names: List[str] = []
        seen: Set[str] = set()
        for goal in goals:
            for var in goal.variables():
                if var.name not in seen:
                    seen.add(var.name)
                    names.append(var.name)
        results: List[Dict[str, Term]] = []
        result_keys: Set[Tuple[Tuple[str, Term], ...]] = set()
        for solution in self.solve(goals):
            binding = {
                name: apply_substitution(Var(name), solution) for name in names
            }
            key = tuple(sorted(binding.items()))
            if key not in result_keys:
                result_keys.add(key)
                results.append(binding)
        return results

    def ask(self, source: str) -> bool:
        for _ in self.solve(parse_query(source)):
            return True
        return False

    def table_sizes(self) -> Dict[str, int]:
        """Answer counts per call pattern (for tests/diagnostics)."""
        return {
            f"{predicate.name}/{predicate.arity}#{i}": len(table.answers)
            for i, ((predicate, _), table) in enumerate(self._tables.items())
        }

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    def _saturate(self, goals: List[Literal], subst: Substitution) -> None:
        """Run rounds until no table grows: each round re-derives every
        registered call pattern against the current tables."""
        # Register the top-level IDB goals.
        for goal in goals:
            instantiated = goal.substitute(subst)
            if self._is_idb(instantiated):
                self._table_for(instantiated)
        for round_number in range(self.max_rounds):
            self.counters.iterations += 1
            tables_before = len(self._tables)
            grew = False
            # Iterate over a snapshot: new call patterns found during
            # the round join the next round.
            for key in list(self._tables):
                if self._expand_table(key):
                    grew = True
            # A freshly registered call pattern is growth too — its
            # table still needs expansion even if no answers appeared
            # this round.
            if not grew and len(self._tables) == tables_before:
                for table in self._tables.values():
                    table.complete = True
                return
        raise RuntimeError(
            f"tabled evaluation did not converge within {self.max_rounds} rounds"
        )

    def _expand_table(self, key: CallKey) -> bool:
        predicate, _ = key
        table = self._tables[key]
        call_literal = Literal(predicate.name, table.general_args)
        grew = False
        # Stored facts.
        relation = self.database.get(predicate)
        if relation is not None:
            for solution in literal_solutions(call_literal, relation, {}, self.counters):
                row = tuple(
                    apply_substitution(arg, solution) for arg in table.general_args
                )
                if all(is_ground(v) for v in row) and row not in table.answers:
                    table.answers.add(row)
                    self.counters.derived_tuples += 1
                    grew = True
        # Rules.
        for rule in self.database.program.rules_for(predicate):
            variant = rule.rename_apart(self._fresh)
            unified = unify_sequences(variant.head.args, table.general_args)
            if unified is None:
                continue
            for solution in self._solve_body(list(variant.body), unified):
                row = tuple(
                    apply_substitution(arg, solution)
                    for arg in table.general_args
                )
                if all(is_ground(v) for v in row) and row not in table.answers:
                    table.answers.add(row)
                    self.counters.derived_tuples += 1
                    grew = True
        return grew

    def _solve_body(
        self, goals: List[Literal], subst: Substitution
    ) -> Iterator[Substitution]:
        """Solve a rule body against the current tables (IDB goals read
        tables only — recursion is closed by the outer fixpoint)."""
        if not goals:
            yield subst
            return
        index = self._select(goals, subst)
        goal = goals[index]
        rest = goals[:index] + goals[index + 1 :]

        if goal.negated:
            ground_args = [apply_substitution(a, subst) for a in goal.args]
            positive = goal.positive().with_args(ground_args)
            if self._is_idb(positive):
                # Negation over a *growing* table is unsound (an early
                # round could wrongly succeed before the positive fact
                # is derived, and table growth is monotone).  Sound
                # support needs stratum-ordered saturation; this
                # evaluator targets the definite programs the paper's
                # chain analyses cover, so refuse loudly instead.
                raise NotImplementedError(
                    "negation over tabled IDB predicates is not supported; "
                    "use TopDownEvaluator (SLD) or SemiNaiveEvaluator "
                    "(stratified bottom-up) instead"
                )
            relation = self.database.get(positive.predicate)
            if relation is None or tuple(ground_args) not in relation:
                yield subst
            return

        builtin = self.registry.get(goal.predicate)
        if builtin is not None:
            self.counters.builtin_evals += 1
            try:
                for solution in builtin.solve(goal.args, subst):
                    yield from self._solve_body(rest, solution)
            except BuiltinError as exc:
                raise NotFinitelyEvaluable(str(exc)) from exc
            return

        if self._is_idb(goal):
            instantiated = goal.substitute(subst)
            table = self._table_for(instantiated)
            self.counters.join_probes += 1
            for row in list(table.answers):
                extended = unify_sequences(goal.args, list(row), subst)
                if extended is not None:
                    yield from self._solve_body(rest, extended)
            return

        relation = self.database.get(goal.predicate)
        if relation is None:
            return
        for solution in literal_solutions(goal, relation, subst, self.counters):
            yield from self._solve_body(rest, solution)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _select(self, goals: List[Literal], subst: Substitution) -> int:
        """Deferred selection (as in the plain evaluator): ready
        builtins first, then ready negations, then a user goal."""
        first_user: Optional[int] = None
        for index, goal in enumerate(goals):
            if goal.negated:
                if all(
                    is_ground(apply_substitution(a, subst)) for a in goal.args
                ):
                    return index
                continue
            builtin = self.registry.get(goal.predicate)
            if builtin is not None:
                bound = frozenset(
                    i
                    for i, arg in enumerate(goal.args)
                    if is_ground(apply_substitution(arg, subst))
                )
                if builtin.is_finite_under(bound):
                    return index
                continue
            if first_user is None:
                first_user = index
        if first_user is not None:
            return first_user
        stuck = ", ".join(str(g.substitute(subst)) for g in goals)
        raise NotFinitelyEvaluable(f"all remaining goals floundered: {stuck}")

    def _is_idb(self, literal: Literal) -> bool:
        return bool(self.database.program.rules_for(literal.predicate))

    def _table_for(self, literal: Literal) -> _Table:
        key_parts, general = _canonical(literal.args)
        key = (literal.predicate, key_parts)
        table = self._tables.get(key)
        if table is None:
            table = _Table(general)
            self._tables[key] = table
        return table

    def _answers_for(
        self, goals: List[Literal], subst: Substitution
    ) -> Iterator[Substitution]:
        yield from self._solve_body(goals, subst)

"""Proof trees: explain *why* an answer holds.

A meta-interpreter mirroring :class:`~repro.engine.topdown.TopDownEvaluator`
(same deferred goal selection, budgets and builtins) that additionally
records, for every solution, the derivation tree: which rule resolved
each goal, grounded by the answer substitution.  Useful for debugging
programs and for demonstrating chain-split evaluation order — the
proof of an ``append^bbf`` answer shows the delayed ``cons`` applied on
the way back up.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..datalog.literals import Literal
from ..datalog.parser import parse_query
from ..datalog.rules import Rule
from ..datalog.terms import Term, fresh_variable_factory, is_ground
from ..datalog.unify import Substitution, apply_substitution, unify_sequences
from .builtins import BuiltinError, BuiltinRegistry, default_registry
from .database import Database
from .joins import literal_solutions
from .topdown import (
    BudgetExceeded,
    NotFinitelyEvaluable,
    TopDownEvaluator,
    _recursion_headroom,
)

__all__ = ["ProofNode", "ProofTracer"]


class ProofNode:
    """One step of a derivation.

    ``kind`` is ``"fact"`` (EDB lookup), ``"builtin"`` (evaluable
    predicate), ``"negation"`` (finitely failed subgoal) or ``"rule"``
    (children prove the rule body).
    """

    __slots__ = ("goal", "kind", "rule", "children")

    def __init__(
        self,
        goal: Literal,
        kind: str,
        rule: Optional[Rule] = None,
        children: Sequence["ProofNode"] = (),
    ):
        self.goal = goal
        self.kind = kind
        self.rule = rule
        self.children = list(children)

    def ground(self, subst: Substitution) -> "ProofNode":
        """The same proof with the final answer substitution applied."""
        return ProofNode(
            self.goal.substitute(subst),
            self.kind,
            self.rule,
            [child.ground(subst) for child in self.children],
        )

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = {"fact": "[fact]", "builtin": "[builtin]", "negation": "[naf]"}.get(
            self.kind, ""
        )
        lines = [f"{pad}{self.goal} {label}".rstrip()]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return f"ProofNode({self.goal}, {self.kind}, {len(self.children)} children)"


class ProofTracer:
    """Enumerate (answer substitution, proof forest) pairs."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_steps: int = 1_000_000,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.max_steps = max_steps
        self._fresh = fresh_variable_factory("_P")
        self._steps = 0
        # Reuse the battle-tested goal selection of the evaluator.
        self._selector = TopDownEvaluator(
            database, self.registry, max_steps=max_steps
        )

    # ------------------------------------------------------------------
    def prove(
        self, query_source
    ) -> Iterator[Tuple[Substitution, List[ProofNode]]]:
        """Yield each solution with its (grounded) proof forest."""
        if isinstance(query_source, str):
            goals = parse_query(query_source)
        elif isinstance(query_source, Literal):
            goals = [query_source]
        else:
            goals = list(query_source)
        self._steps = 0
        with _recursion_headroom():
            for subst, forest in self._solve(list(goals), {}):
                yield subst, [node.ground(subst) for node in forest]

    def explain(self, query_source) -> Optional[str]:
        """The first answer's proof, formatted — or None."""
        for _, forest in self.prove(query_source):
            return "\n".join(node.format() for node in forest)
        return None

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise BudgetExceeded(f"exceeded {self.max_steps} resolution steps")

    def _solve(
        self, goals: List[Literal], subst: Substitution
    ) -> Iterator[Tuple[Substitution, List[ProofNode]]]:
        if not goals:
            yield subst, []
            return
        self._tick()
        index = self._selector._select(goals, subst)
        goal = goals[index]
        rest = goals[:index] + goals[index + 1 :]

        if goal.negated:
            ground_args = [apply_substitution(a, subst) for a in goal.args]
            if any(not is_ground(a) for a in ground_args):
                raise NotFinitelyEvaluable(
                    f"negated goal {goal} selected with unbound arguments"
                )
            positive = goal.positive().with_args(ground_args)
            for _ in self._solve([positive], dict(subst)):
                return
            for solution, forest in self._solve(rest, subst):
                node = ProofNode(goal, "negation")
                yield solution, self._insert(index, node, forest, len(goals))
            return

        builtin = self.registry.get(goal.predicate)
        if builtin is not None:
            try:
                solutions = list(builtin.solve(goal.args, subst))
            except BuiltinError as exc:
                raise NotFinitelyEvaluable(str(exc)) from exc
            for solution in solutions:
                for final, forest in self._solve(rest, solution):
                    node = ProofNode(goal, "builtin")
                    yield final, self._insert(index, node, forest, len(goals))
            return

        relation = self.database.get(goal.predicate)
        if relation is not None:
            for solution in literal_solutions(goal, relation, subst):
                for final, forest in self._solve(rest, solution):
                    node = ProofNode(goal, "fact")
                    yield final, self._insert(index, node, forest, len(goals))

        for rule in self.database.program.rules_for(goal.predicate):
            variant = rule.rename_apart(self._fresh)
            unified = unify_sequences(variant.head.args, goal.args, subst)
            if unified is None:
                continue
            for body_solution, body_forest in self._solve(
                list(variant.body), unified
            ):
                for final, rest_forest in self._solve(rest, body_solution):
                    node = ProofNode(goal, "rule", rule, body_forest)
                    yield final, self._insert(index, node, rest_forest, len(goals))

    @staticmethod
    def _insert(
        index: int, node: ProofNode, rest_forest: List[ProofNode], total: int
    ) -> List[ProofNode]:
        """Place the selected goal's proof back at its original
        position among its siblings."""
        forest = list(rest_forest)
        forest.insert(min(index, len(forest)), node)
        return forest

"""Storage and evaluation engine: relations, database, builtins,
bottom-up (naive/semi-naive) and top-down (SLD) evaluators, statistics.
"""

from .builtins import (
    Builtin,
    BuiltinError,
    BuiltinRegistry,
    default_registry,
    evaluate_arithmetic,
    is_builtin_name,
)
from .counters import Counters
from .database import Database, FinitenessConstraint
from .io import load_facts_csv, load_program_file, save_facts_csv
from .joins import UnsafeRuleError, evaluate_body, literal_solutions, order_body
from .proofs import ProofNode, ProofTracer
from .relation import Relation, Row, wrap_term
from .seminaive import EvaluationResult, NaiveEvaluator, SemiNaiveEvaluator
from .statistics import CatalogStatistics, RelationStatistics
from .tabling import TabledEvaluator
from .topdown import BudgetExceeded, NotFinitelyEvaluable, TopDownEvaluator

__all__ = [
    "BudgetExceeded",
    "Builtin",
    "BuiltinError",
    "BuiltinRegistry",
    "CatalogStatistics",
    "Counters",
    "Database",
    "EvaluationResult",
    "FinitenessConstraint",
    "NaiveEvaluator",
    "NotFinitelyEvaluable",
    "ProofNode",
    "ProofTracer",
    "Relation",
    "RelationStatistics",
    "Row",
    "SemiNaiveEvaluator",
    "TabledEvaluator",
    "TopDownEvaluator",
    "UnsafeRuleError",
    "default_registry",
    "evaluate_arithmetic",
    "evaluate_body",
    "is_builtin_name",
    "literal_solutions",
    "load_facts_csv",
    "load_program_file",
    "order_body",
    "save_facts_csv",
    "wrap_term",
]

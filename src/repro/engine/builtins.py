"""Evaluable (functional) predicates and their binding modes.

The paper's functional recursions rely on *functional predicates*: the
predicate form of constructors and arithmetic obtained by rectification
(``V = f(X1..Xk)`` becomes ``f(X1..Xk, V)``).  Such predicates denote
infinite relations — ``cons`` relates *every* head/tail to the combined
list — so they can never be materialized as EDB relations.  Instead an
occurrence is *evaluable* only under certain binding modes, and a chain
generating path containing an occurrence that is not finitely evaluable
under the query adornment is exactly what forces a finiteness-based
chain-split (paper §2.2).

Each :class:`Builtin` bundles:

* ``solve(args, subst)`` — enumerate solutions as extended
  substitutions, assuming a mode under which the call is finite;
* ``finite_modes`` — the binding patterns (sets of bound argument
  positions) under which the call has finitely many solutions;
* the induced finiteness constraints, used by
  :mod:`repro.analysis.finiteness`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import NIL, Const, Struct, Term, Var, cons, is_ground
from ..datalog.unify import Substitution, apply_substitution, unify, walk

__all__ = [
    "Builtin",
    "BuiltinRegistry",
    "BuiltinError",
    "default_registry",
    "evaluate_arithmetic",
    "is_builtin_name",
]


class BuiltinError(ValueError):
    """Raised when a builtin is called under an unsupported mode."""


def evaluate_arithmetic(term: Term, subst: Substitution) -> Const:
    """Evaluate an arithmetic expression term to a numeric constant.

    Supports ``+ - * /`` structs over numbers; integer division that
    divides evenly stays an int.  Raises :class:`BuiltinError` on
    unbound variables or non-numeric leaves.
    """
    term = walk(term, subst)
    if isinstance(term, Var):
        raise BuiltinError(f"arithmetic on unbound variable {term}")
    if isinstance(term, Const):
        if isinstance(term.value, bool) or not isinstance(term.value, (int, float)):
            raise BuiltinError(f"non-numeric constant in arithmetic: {term}")
        return term
    if isinstance(term, Struct) and term.arity == 1 and term.functor == "abs":
        value = evaluate_arithmetic(term.args[0], subst).value
        return Const(abs(value))
    if (
        isinstance(term, Struct)
        and term.arity == 2
        and term.functor in {"+", "-", "*", "/", "mod", "min", "max"}
    ):
        left = evaluate_arithmetic(term.args[0], subst).value
        right = evaluate_arithmetic(term.args[1], subst).value
        if term.functor == "+":
            return Const(left + right)
        if term.functor == "-":
            return Const(left - right)
        if term.functor == "*":
            return Const(left * right)
        if term.functor == "min":
            return Const(min(left, right))
        if term.functor == "max":
            return Const(max(left, right))
        if right == 0:
            raise BuiltinError(
                "division by zero" if term.functor == "/" else "mod by zero"
            )
        if term.functor == "mod":
            return Const(left % right)
        result = left / right
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return Const(left // right)
        return Const(result)
    raise BuiltinError(f"cannot evaluate arithmetic term {term}")


def _bound_positions(args: Sequence[Term], subst: Substitution) -> FrozenSet[int]:
    bound = set()
    for i, arg in enumerate(args):
        if is_ground(apply_substitution(arg, subst)):
            bound.add(i)
    return frozenset(bound)


class Builtin:
    """An evaluable predicate.

    ``solver(args, subst)`` yields substitutions extending ``subst``.
    ``finite_modes`` lists minimal sets of argument positions whose
    boundness guarantees finitely many solutions; a call is finitely
    evaluable when its bound set is a superset of some listed mode.
    """

    def __init__(
        self,
        name: str,
        arity: int,
        solver: Callable[[Sequence[Term], Substitution], Iterator[Substitution]],
        finite_modes: Iterable[FrozenSet[int]],
        description: str = "",
    ):
        self.predicate = Predicate(name, arity)
        self.solver = solver
        self.finite_modes = [frozenset(m) for m in finite_modes]
        self.description = description

    @property
    def name(self) -> str:
        return self.predicate.name

    @property
    def arity(self) -> int:
        return self.predicate.arity

    def is_finite_under(self, bound: Iterable[int]) -> bool:
        """Finitely evaluable when ``bound`` positions are bound?"""
        bound_set = frozenset(bound)
        return any(mode <= bound_set for mode in self.finite_modes)

    def solve(self, args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
        """Enumerate solutions; raises BuiltinError on unsupported modes."""
        return self.solver(args, subst)

    def __repr__(self) -> str:
        return f"Builtin({self.predicate})"


# ----------------------------------------------------------------------
# Individual builtin solvers
# ----------------------------------------------------------------------

_NUMERIC_ORDER = (int, float)


def _comparable(value: object) -> Tuple[int, object]:
    """Total order across the constant payloads we support."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


def _term_key(term: Term):
    if isinstance(term, Const):
        return _comparable(term.value)
    return (2, str(term))


def _solve_comparison(op: str):
    checks = {
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
        "=<": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "\\==": lambda a, b: a != b,
    }
    check = checks[op]

    def solver(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
        left = apply_substitution(args[0], subst)
        right = apply_substitution(args[1], subst)
        if not is_ground(left) or not is_ground(right):
            # Arithmetic comparisons evaluate their sides when they are
            # expressions; ==/\== compare structurally.
            raise BuiltinError(f"comparison {op} requires ground arguments")
        if op in {"==", "\\=="}:
            if check(left, right):
                yield subst
            return
        left_val = evaluate_arithmetic(left, subst).value
        right_val = evaluate_arithmetic(right, subst).value
        if check(left_val, right_val):
            yield subst

    return solver


def _solve_unify(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
    result = unify(args[0], args[1], subst)
    if result is not None:
        yield result


def _solve_is(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
    value = evaluate_arithmetic(args[1], subst)
    result = unify(args[0], value, subst)
    if result is not None:
        yield result


def _solve_cons(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
    """``cons(H, T, L)``: L = [H | T].

    Evaluable when (H, T) are bound (construct) or L is bound
    (deconstruct); otherwise the relation is infinite.
    """
    head = apply_substitution(args[0], subst)
    tail = apply_substitution(args[1], subst)
    whole = apply_substitution(args[2], subst)
    if is_ground(head) and is_ground(tail):
        result = unify(args[2], cons(head, tail), subst)
        if result is not None:
            yield result
        return
    if isinstance(whole, Struct) and whole.functor == "." and whole.arity == 2:
        result = unify(args[0], whole.args[0], subst)
        if result is None:
            return
        result = unify(args[1], whole.args[1], result)
        if result is not None:
            yield result
        return
    if is_ground(whole):
        # A ground non-cons third argument (e.g. []) simply fails.
        return
    raise BuiltinError("cons requires (H,T) bound or L bound")


def _three_way_arith(op_name: str, forward, back_left, back_right):
    """Build solvers for Z = X op Y evaluable given any two arguments.

    ``forward(x, y) -> z``, ``back_left(z, y) -> x``,
    ``back_right(z, x) -> y``.
    """

    def solver(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
        x = apply_substitution(args[0], subst)
        y = apply_substitution(args[1], subst)
        z = apply_substitution(args[2], subst)
        x_b, y_b, z_b = is_ground(x), is_ground(y), is_ground(z)
        if x_b and y_b:
            value = forward(
                evaluate_arithmetic(x, subst).value, evaluate_arithmetic(y, subst).value
            )
            result = unify(args[2], Const(value), subst)
            if result is not None:
                yield result
            return
        if z_b and y_b:
            value = back_left(
                evaluate_arithmetic(z, subst).value, evaluate_arithmetic(y, subst).value
            )
            result = unify(args[0], Const(value), subst)
            if result is not None:
                yield result
            return
        if z_b and x_b:
            value = back_right(
                evaluate_arithmetic(z, subst).value, evaluate_arithmetic(x, subst).value
            )
            result = unify(args[1], Const(value), subst)
            if result is not None:
                yield result
            return
        raise BuiltinError(f"{op_name}/3 requires at least two bound arguments")

    return solver


def _solve_between(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
    """``between(Low, High, X)``: enumerate (or check) integers in
    [Low, High].  Finite only when both bounds are bound."""
    low = evaluate_arithmetic(args[0], subst).value
    high = evaluate_arithmetic(args[1], subst).value
    if not isinstance(low, int) or not isinstance(high, int):
        raise BuiltinError("between/3 requires integer bounds")
    target = apply_substitution(args[2], subst)
    if is_ground(target):
        if isinstance(target, Const) and isinstance(target.value, int):
            if low <= target.value <= high:
                yield subst
        return
    for value in range(low, high + 1):
        result = unify(args[2], Const(value), subst)
        if result is not None:
            yield result


def _solve_length(args: Sequence[Term], subst: Substitution) -> Iterator[Substitution]:
    lst = apply_substitution(args[0], subst)
    count = 0
    while isinstance(lst, Struct) and lst.functor == "." and lst.arity == 2:
        count += 1
        lst = lst.args[1]
    if lst != NIL:
        raise BuiltinError("length/2 requires a proper list first argument")
    result = unify(args[1], Const(count), subst)
    if result is not None:
        yield result


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class BuiltinRegistry:
    """Name/arity-indexed collection of builtins."""

    def __init__(self):
        self._builtins: Dict[Predicate, Builtin] = {}

    def register(self, builtin: Builtin) -> None:
        self._builtins[builtin.predicate] = builtin

    def get(self, predicate: Predicate) -> Optional[Builtin]:
        return self._builtins.get(predicate)

    def lookup(self, name: str, arity: int) -> Optional[Builtin]:
        return self._builtins.get(Predicate(name, arity))

    def is_builtin(self, literal: Literal) -> bool:
        return literal.predicate in self._builtins

    def solve(self, literal: Literal, subst: Substitution) -> Iterator[Substitution]:
        builtin = self._builtins.get(literal.predicate)
        if builtin is None:
            raise BuiltinError(f"{literal.predicate} is not a builtin")
        return builtin.solve(literal.args, subst)

    def predicates(self) -> Set[Predicate]:
        return set(self._builtins)

    def copy(self) -> "BuiltinRegistry":
        clone = BuiltinRegistry()
        clone._builtins = dict(self._builtins)
        return clone


def default_registry() -> BuiltinRegistry:
    """The registry with all the paper's evaluable predicates."""
    registry = BuiltinRegistry()
    both = [frozenset({0, 1})]
    for op in ("<", ">", "=<", ">=", "==", "\\=="):
        registry.register(
            Builtin(op, 2, _solve_comparison(op), both, f"comparison {op}")
        )
    registry.register(
        Builtin("=", 2, _solve_unify, [frozenset({0}), frozenset({1})], "unification")
    )
    registry.register(
        Builtin("is", 2, _solve_is, [frozenset({1})], "arithmetic evaluation")
    )
    registry.register(
        Builtin(
            "cons",
            3,
            _solve_cons,
            [frozenset({0, 1}), frozenset({2})],
            "list construction [H|T] = L",
        )
    )
    any_two = [frozenset({0, 1}), frozenset({0, 2}), frozenset({1, 2})]
    registry.register(
        Builtin(
            "sum",
            3,
            _three_way_arith("sum", lambda x, y: x + y, lambda z, y: z - y, lambda z, x: z - x),
            any_two,
            "Z = X + Y (the paper's fare-accumulation predicate)",
        )
    )
    registry.register(
        Builtin(
            "plus",
            3,
            _three_way_arith("plus", lambda x, y: x + y, lambda z, y: z - y, lambda z, x: z - x),
            any_two,
            "Z = X + Y",
        )
    )
    registry.register(
        Builtin(
            "minus",
            3,
            _three_way_arith("minus", lambda x, y: x - y, lambda z, y: z + y, lambda z, x: x - z),
            any_two,
            "Z = X - Y",
        )
    )
    registry.register(
        Builtin(
            "times",
            3,
            _three_way_arith(
                "times",
                lambda x, y: x * y,
                lambda z, y: z / y if z % y else z // y,
                lambda z, x: z / x if z % x else z // x,
            ),
            [frozenset({0, 1})],
            "Z = X * Y (forward mode only; division may not invert)",
        )
    )
    registry.register(
        Builtin("length", 2, _solve_length, [frozenset({0})], "list length")
    )
    registry.register(
        Builtin(
            "between",
            3,
            _solve_between,
            [frozenset({0, 1})],
            "integer range generator/check",
        )
    )
    return registry


_DEFAULT = default_registry()


def is_builtin_name(name: str, arity: int) -> bool:
    """True when ``name/arity`` is a default builtin."""
    return _DEFAULT.lookup(name, arity) is not None

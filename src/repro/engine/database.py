"""The database: an EDB catalog of relations plus an IDB program.

Matches the paper's model of a deductive database as (i) an extensional
database of data relations, (ii) an intensional database of Horn rules
and (iii) integrity constraints — here, the finiteness constraints the
finite-evaluability analysis consumes (:mod:`repro.analysis.finiteness`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..datalog.literals import Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term
from .relation import Relation, Row, wrap_term

__all__ = [
    "Database",
    "FinitenessConstraint",
    "MutationBatch",
    "RelationDelta",
]


@dataclass
class RelationDelta:
    """The net effect of one committed mutation batch on one relation.

    ``window`` is the ``[lo, hi)`` insertion-log interval the added rows
    occupy in the stored relation — consumers (incremental view
    maintenance) turn it into a zero-copy
    :class:`~repro.engine.relation.RelationWindow` delta instead of
    re-hashing the added rows.
    """

    predicate: Predicate
    added: List[Row] = field(default_factory=list)
    removed: List[Row] = field(default_factory=list)
    window: Tuple[int, int] = (0, 0)


@dataclass
class MutationBatch:
    """One committed group of EDB mutations, net of cancellations.

    Handed to mutation listeners *after* the stored relations and the
    version counters reflect the batch.  ``deltas`` only holds
    relations that actually changed.
    """

    deltas: Dict[Predicate, RelationDelta]
    edb_version: int

    def __bool__(self) -> bool:
        return bool(self.deltas)


class FinitenessConstraint:
    """A finiteness constraint ``X -> Y`` on a predicate (ref [6]).

    ``sources -> targets`` asserts: for each value combination of the
    source argument positions, only finitely many value combinations of
    the target positions occur.  Strictly weaker than a functional
    dependency; holds trivially on every finite (EDB) relation.
    """

    __slots__ = ("predicate", "sources", "targets")

    def __init__(self, predicate: Predicate, sources: Sequence[int], targets: Sequence[int]):
        for pos in (*sources, *targets):
            if not 0 <= pos < predicate.arity:
                raise ValueError(
                    f"argument position {pos} out of range for {predicate}"
                )
        self.predicate = predicate
        self.sources = frozenset(sources)
        self.targets = frozenset(targets)

    def __repr__(self) -> str:
        src = ",".join(map(str, sorted(self.sources)))
        tgt = ",".join(map(str, sorted(self.targets)))
        return f"FinitenessConstraint({self.predicate}: {{{src}}} -> {{{tgt}}})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FinitenessConstraint)
            and self.predicate == other.predicate
            and self.sources == other.sources
            and self.targets == other.targets
        )

    def __hash__(self) -> int:
        return hash((self.predicate, self.sources, self.targets))


class Database:
    """EDB relations + IDB rules + finiteness constraints.

    Every mutation through the public API bumps one of two version
    counters: :attr:`edb_version` for fact changes and
    :attr:`idb_version` for rule changes.  Long-lived consumers (the
    :class:`~repro.core.planner.Planner`'s normalized-program snapshot,
    the service layer's plan and result caches) compare versions to
    decide what to invalidate — answers depend on both, planning only
    on the IDB.  Mutating a :class:`Relation` obtained from
    :meth:`relation`/:meth:`get` directly bypasses the counters; go
    through :meth:`add_fact` when cache coherence matters.
    """

    def __init__(self, program: Optional[Program] = None):
        self.relations: Dict[Predicate, Relation] = {}
        self.program: Program = Program()
        self.finiteness_constraints: Set[FinitenessConstraint] = set()
        #: Bumped on every EDB (fact) mutation.
        self.edb_version: int = 0
        #: Bumped on every IDB (rule) mutation.
        self.idb_version: int = 0
        #: Per-relation mutation counters: ``edb_version`` says *that*
        #: something changed, these say *what* — the granularity
        #: selective cache invalidation and view maintenance need.
        self.relation_versions: Dict[Predicate, int] = {}
        #: Optional write-ahead log (``repro.persist``).  When attached,
        #: every committed mutation is appended — and made durable per
        #: the log's fsync policy — *before* listeners run or the
        #: mutating call returns, so no acknowledgement can outlive the
        #: record that justifies it.
        self.wal = None
        #: LSN of the most recent logged mutation (0 without a WAL).
        self.last_lsn: int = 0
        self._mutation_listeners: List[Callable[[MutationBatch], None]] = []
        if program is not None:
            self.load_program(program)

    @property
    def version(self) -> Tuple[int, int]:
        """The combined ``(edb_version, idb_version)`` stamp."""
        return (self.edb_version, self.idb_version)

    # ------------------------------------------------------------------
    # EDB management
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        predicate = Predicate(relation.name, relation.arity)
        existing = self.relations.get(predicate)
        if existing is not None:
            lo = existing.mark()
            added = [row for row in relation.rows() if existing.add(row)]
            hi = existing.mark()
        else:
            self.relations[predicate] = relation
            added = list(relation.rows())
            lo, hi = 0, relation.mark()
        self.edb_version += 1
        self._bump_relation(predicate)
        if self.wal is not None:
            self.last_lsn = self.wal.append(
                {
                    "op": "relation",
                    "name": predicate.name,
                    "arity": predicate.arity,
                    "rows": [[str(value) for value in row] for row in added],
                }
            )
        if added and self._mutation_listeners:
            self._notify(
                {predicate: RelationDelta(predicate, added, [], (lo, hi))}
            )

    def relation(self, name: str, arity: int) -> Relation:
        """The relation for ``name/arity``, created empty on demand."""
        predicate = Predicate(name, arity)
        if predicate not in self.relations:
            self.relations[predicate] = Relation(name, arity)
        return self.relations[predicate]

    def get(self, predicate: Predicate) -> Optional[Relation]:
        return self.relations.get(predicate)

    def add_fact(self, name: str, values: Sequence[object]) -> bool:
        """Insert a fact given Python values or terms."""
        row = tuple(wrap_term(v) for v in values)
        relation = self.relation(name, len(row))
        lo = relation.mark()
        if not relation.add(row):
            return False
        predicate = Predicate(name, len(row))
        self.edb_version += 1
        self._bump_relation(predicate)
        if self.wal is not None:
            self.last_lsn = self.wal.append(
                {"op": "fact", "name": name, "row": [str(v) for v in row]}
            )
        if self._mutation_listeners:
            self._notify(
                {
                    predicate: RelationDelta(
                        predicate, [row], [], (lo, relation.mark())
                    )
                }
            )
        return True

    def retract_fact(self, name: str, values: Sequence[object]) -> bool:
        """Remove a fact; ``False`` when it was not stored."""
        row = tuple(wrap_term(v) for v in values)
        predicate = Predicate(name, len(row))
        relation = self.relations.get(predicate)
        if relation is None or not relation.discard(row):
            return False
        self.edb_version += 1
        self._bump_relation(predicate)
        if self.wal is not None:
            self.last_lsn = self.wal.append(
                {"op": "retract", "name": name, "row": [str(v) for v in row]}
            )
        if self._mutation_listeners:
            mark = relation.mark()
            self._notify(
                {predicate: RelationDelta(predicate, [], [row], (mark, mark))}
            )
        return True

    def apply_batch(
        self, mutations: Iterable[Tuple[str, str, Sequence[object]]]
    ) -> MutationBatch:
        """Apply ``(op, name, values)`` mutations as one committed batch.

        ``op`` is ``"add"`` or ``"retract"``.  The batch is normalised
        to its *net* effect first (an add followed by a retract of the
        same row cancels out), then per relation all removals land
        before any additions — so the added rows occupy one contiguous
        log window and a listener never observes an intermediate state
        where a retracted row still shadows its re-addition.  The
        version counters bump once per batch (``edb_version``) and once
        per touched relation.
        """
        desired: Dict[Predicate, Dict[Row, bool]] = {}
        for op, name, values in mutations:
            if op not in ("add", "retract"):
                raise ValueError(f"unknown mutation op {op!r}")
            row = tuple(wrap_term(v) for v in values)
            predicate = Predicate(name, len(row))
            desired.setdefault(predicate, {})[row] = op == "add"
        deltas: Dict[Predicate, RelationDelta] = {}
        for predicate, wants in desired.items():
            relation = self.relations.get(predicate)
            if relation is None:
                if not any(wants.values()):
                    # Retract-only misses on an undeclared relation:
                    # declaring it here would be an observable state
                    # change (edb_predicates) that no WAL record logs,
                    # so a recovered database could never reproduce it.
                    continue
                relation = self.relation(predicate.name, predicate.arity)
            removed = [
                row
                for row, want in wants.items()
                if not want and relation.discard(row)
            ]
            lo = relation.mark()
            added = [
                row for row, want in wants.items() if want and relation.add(row)
            ]
            if added or removed:
                deltas[predicate] = RelationDelta(
                    predicate, added, removed, (lo, relation.mark())
                )
        if deltas:
            self.edb_version += 1
            for predicate in deltas:
                self._bump_relation(predicate)
            if self.wal is not None:
                # The *normalized* wants, in first-seen order: replaying
                # them through apply_batch re-derives identical deltas,
                # windows and version bumps against the same prior state.
                self.last_lsn = self.wal.append(
                    {
                        "op": "batch",
                        "muts": [
                            [
                                "add" if want else "retract",
                                predicate.name,
                                [str(v) for v in row],
                            ]
                            for predicate, wants in desired.items()
                            for row, want in wants.items()
                        ],
                    }
                )
            if self._mutation_listeners:
                self._notify(deltas)
        return MutationBatch(deltas, self.edb_version)

    def edb_predicates(self) -> Set[Predicate]:
        return set(self.relations)

    # ------------------------------------------------------------------
    # Mutation listeners
    # ------------------------------------------------------------------
    def add_mutation_listener(
        self, listener: Callable[[MutationBatch], None]
    ) -> None:
        """Register ``listener`` to run after each committed EDB batch.

        Listeners run synchronously, in registration order, with the
        relations and version counters already reflecting the batch.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(
        self, listener: Callable[[MutationBatch], None]
    ) -> None:
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _bump_relation(self, predicate: Predicate) -> None:
        self.relation_versions[predicate] = (
            self.relation_versions.get(predicate, 0) + 1
        )

    def _notify(self, deltas: Dict[Predicate, RelationDelta]) -> None:
        batch = MutationBatch(deltas, self.edb_version)
        for listener in list(self._mutation_listeners):
            listener(batch)

    # ------------------------------------------------------------------
    # IDB management
    # ------------------------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Install rules; ground facts go to the EDB instead."""
        for rule in program:
            self.add_rule(rule)

    def load_source(self, source: str) -> None:
        """Parse and load Prolog-style source text."""
        self.load_program(Program.parse(source))

    def add_rule(self, rule: Rule) -> None:
        if rule.is_fact():
            self.add_fact(rule.head.name, rule.head.args)
        else:
            self.program.add(rule)
            self.idb_version += 1
            if self.wal is not None:
                self.last_lsn = self.wal.append(
                    {"op": "rule", "text": str(rule)}
                )

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_finiteness_constraint(self, constraint: FinitenessConstraint) -> None:
        self.finiteness_constraints.add(constraint)

    def constraints_for(self, predicate: Predicate) -> List[FinitenessConstraint]:
        explicit = [
            c for c in self.finiteness_constraints if c.predicate == predicate
        ]
        # Finiteness holds trivially on finite EDB relations: every
        # argument set determines every other (including the empty set).
        if predicate in self.relations:
            all_positions = tuple(range(predicate.arity))
            explicit.append(FinitenessConstraint(predicate, (), all_positions))
        return explicit

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_facts(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def copy(self) -> "Database":
        clone = Database()
        clone.program = Program(list(self.program))
        clone.finiteness_constraints = set(self.finiteness_constraints)
        for predicate, relation in self.relations.items():
            clone.relations[predicate] = relation.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"Database({len(self.relations)} relations, "
            f"{self.total_facts()} facts, {len(self.program)} rules)"
        )

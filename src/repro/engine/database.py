"""The database: an EDB catalog of relations plus an IDB program.

Matches the paper's model of a deductive database as (i) an extensional
database of data relations, (ii) an intensional database of Horn rules
and (iii) integrity constraints — here, the finiteness constraints the
finite-evaluability analysis consumes (:mod:`repro.analysis.finiteness`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term
from .relation import Relation, Row, wrap_term

__all__ = ["Database", "FinitenessConstraint"]


class FinitenessConstraint:
    """A finiteness constraint ``X -> Y`` on a predicate (ref [6]).

    ``sources -> targets`` asserts: for each value combination of the
    source argument positions, only finitely many value combinations of
    the target positions occur.  Strictly weaker than a functional
    dependency; holds trivially on every finite (EDB) relation.
    """

    __slots__ = ("predicate", "sources", "targets")

    def __init__(self, predicate: Predicate, sources: Sequence[int], targets: Sequence[int]):
        for pos in (*sources, *targets):
            if not 0 <= pos < predicate.arity:
                raise ValueError(
                    f"argument position {pos} out of range for {predicate}"
                )
        self.predicate = predicate
        self.sources = frozenset(sources)
        self.targets = frozenset(targets)

    def __repr__(self) -> str:
        src = ",".join(map(str, sorted(self.sources)))
        tgt = ",".join(map(str, sorted(self.targets)))
        return f"FinitenessConstraint({self.predicate}: {{{src}}} -> {{{tgt}}})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FinitenessConstraint)
            and self.predicate == other.predicate
            and self.sources == other.sources
            and self.targets == other.targets
        )

    def __hash__(self) -> int:
        return hash((self.predicate, self.sources, self.targets))


class Database:
    """EDB relations + IDB rules + finiteness constraints.

    Every mutation through the public API bumps one of two version
    counters: :attr:`edb_version` for fact changes and
    :attr:`idb_version` for rule changes.  Long-lived consumers (the
    :class:`~repro.core.planner.Planner`'s normalized-program snapshot,
    the service layer's plan and result caches) compare versions to
    decide what to invalidate — answers depend on both, planning only
    on the IDB.  Mutating a :class:`Relation` obtained from
    :meth:`relation`/:meth:`get` directly bypasses the counters; go
    through :meth:`add_fact` when cache coherence matters.
    """

    def __init__(self, program: Optional[Program] = None):
        self.relations: Dict[Predicate, Relation] = {}
        self.program: Program = Program()
        self.finiteness_constraints: Set[FinitenessConstraint] = set()
        #: Bumped on every EDB (fact) mutation.
        self.edb_version: int = 0
        #: Bumped on every IDB (rule) mutation.
        self.idb_version: int = 0
        if program is not None:
            self.load_program(program)

    @property
    def version(self) -> Tuple[int, int]:
        """The combined ``(edb_version, idb_version)`` stamp."""
        return (self.edb_version, self.idb_version)

    # ------------------------------------------------------------------
    # EDB management
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        predicate = Predicate(relation.name, relation.arity)
        if predicate in self.relations:
            self.relations[predicate].add_all(relation.rows())
        else:
            self.relations[predicate] = relation
        self.edb_version += 1

    def relation(self, name: str, arity: int) -> Relation:
        """The relation for ``name/arity``, created empty on demand."""
        predicate = Predicate(name, arity)
        if predicate not in self.relations:
            self.relations[predicate] = Relation(name, arity)
        return self.relations[predicate]

    def get(self, predicate: Predicate) -> Optional[Relation]:
        return self.relations.get(predicate)

    def add_fact(self, name: str, values: Sequence[object]) -> bool:
        """Insert a fact given Python values or terms."""
        row = tuple(wrap_term(v) for v in values)
        added = self.relation(name, len(row)).add(row)
        if added:
            self.edb_version += 1
        return added

    def edb_predicates(self) -> Set[Predicate]:
        return set(self.relations)

    # ------------------------------------------------------------------
    # IDB management
    # ------------------------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Install rules; ground facts go to the EDB instead."""
        for rule in program:
            self.add_rule(rule)

    def load_source(self, source: str) -> None:
        """Parse and load Prolog-style source text."""
        self.load_program(Program.parse(source))

    def add_rule(self, rule: Rule) -> None:
        if rule.is_fact():
            if self.relation(rule.head.name, rule.head.arity).add(rule.head.args):
                self.edb_version += 1
        else:
            self.program.add(rule)
            self.idb_version += 1

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_finiteness_constraint(self, constraint: FinitenessConstraint) -> None:
        self.finiteness_constraints.add(constraint)

    def constraints_for(self, predicate: Predicate) -> List[FinitenessConstraint]:
        explicit = [
            c for c in self.finiteness_constraints if c.predicate == predicate
        ]
        # Finiteness holds trivially on finite EDB relations: every
        # argument set determines every other (including the empty set).
        if predicate in self.relations:
            all_positions = tuple(range(predicate.arity))
            explicit.append(FinitenessConstraint(predicate, (), all_positions))
        return explicit

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_facts(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def copy(self) -> "Database":
        clone = Database()
        clone.program = Program(list(self.program))
        clone.finiteness_constraints = set(self.finiteness_constraints)
        for predicate, relation in self.relations.items():
            clone.relations[predicate] = relation.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"Database({len(self.relations)} relations, "
            f"{self.total_facts()} facts, {len(self.program)} rules)"
        )

"""Database statistics feeding the chain-split cost model.

Algorithm 3.1 decides whether to propagate a binding across a linkage
by the **join expansion ratio**: how many tuples (distinct bindings)
one binding expands into when pushed through a predicate.  These are
exactly the quantities a relational optimizer keeps (ref [18]); we
compute them exactly rather than by sampling since relations are in
memory.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from ..datalog.literals import Predicate
from ..datalog.terms import Term
from .database import Database
from .relation import Relation

__all__ = ["RelationStatistics", "CatalogStatistics"]


class RelationStatistics:
    """Exact statistics for one stored relation."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self._distinct_cache: Dict[Tuple[int, ...], int] = {}
        self._fanout_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}

    @property
    def cardinality(self) -> int:
        return len(self.relation)

    def distinct(self, columns: Sequence[int]) -> int:
        """Number of distinct value combinations on ``columns``."""
        key = tuple(sorted(columns))
        if key not in self._distinct_cache:
            values: Set[Tuple[Term, ...]] = {
                tuple(row[c] for c in key) for row in self.relation
            }
            self._distinct_cache[key] = len(values)
        return self._distinct_cache[key]

    def fanout(self, from_columns: Sequence[int], to_columns: Sequence[int]) -> float:
        """Average number of distinct ``to`` combinations per ``from``
        combination — the join expansion ratio of this linkage.

        Empty relations report a fanout of 0.0.
        """
        key = (tuple(sorted(from_columns)), tuple(sorted(to_columns)))
        if key not in self._fanout_cache:
            if not len(self.relation):
                self._fanout_cache[key] = 0.0
            elif not key[0]:
                # No binding: the whole projection flows through.
                self._fanout_cache[key] = float(self.distinct(key[1]))
            else:
                groups: Dict[Tuple[Term, ...], Set[Tuple[Term, ...]]] = {}
                for row in self.relation:
                    source = tuple(row[c] for c in key[0])
                    target = tuple(row[c] for c in key[1])
                    groups.setdefault(source, set()).add(target)
                total = sum(len(targets) for targets in groups.values())
                self._fanout_cache[key] = total / len(groups)
        return self._fanout_cache[key]

    def selectivity(self, columns: Sequence[int]) -> float:
        """Fraction of rows matched by one key on ``columns`` (uniform
        assumption): 1 / distinct(columns)."""
        distinct = self.distinct(columns)
        if distinct == 0:
            return 0.0
        return 1.0 / distinct

    def __repr__(self) -> str:
        return (
            f"RelationStatistics({self.relation.name}/{self.relation.arity}, "
            f"card={self.cardinality})"
        )


class CatalogStatistics:
    """Statistics for every stored relation of a database."""

    def __init__(self, database: Database):
        self.database = database
        self._per_relation: Dict[Predicate, RelationStatistics] = {}

    def for_predicate(self, predicate: Predicate) -> Optional[RelationStatistics]:
        if predicate in self._per_relation:
            return self._per_relation[predicate]
        relation = self.database.get(predicate)
        if relation is None:
            return None
        stats = RelationStatistics(relation)
        self._per_relation[predicate] = stats
        return stats

    def expansion_ratio(
        self,
        predicate: Predicate,
        from_columns: Sequence[int],
        to_columns: Sequence[int],
        default: float = float("inf"),
    ) -> float:
        """Join expansion ratio of a linkage through ``predicate``.

        Functional predicates (no stored relation) have no statistics:
        they expand 1:1 when evaluable, but the *relation* is infinite,
        so the default is ``inf`` — callers handling builtins should
        special-case them before asking.
        """
        stats = self.for_predicate(predicate)
        if stats is None:
            return default
        return stats.fanout(from_columns, to_columns)

    def cardinality(self, predicate: Predicate) -> int:
        stats = self.for_predicate(predicate)
        return stats.cardinality if stats is not None else 0

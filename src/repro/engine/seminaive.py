"""Naive and semi-naive bottom-up fixpoint evaluation.

Semi-naive evaluation (ref [1]) is the workhorse under both classic
magic sets and the chain-split variant: after rewriting, the rewritten
program is handed to this evaluator.  The naive evaluator re-derives
everything each round and exists as a correctness oracle and as the
pedagogical baseline in benchmarks.

Both evaluators are stratified: negation is allowed as long as the
program is stratifiable (checked by :meth:`Program.strata`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term, is_ground
from ..datalog.unify import Substitution, apply_substitution
from .builtins import BuiltinRegistry, default_registry
from .counters import Counters
from .database import Database
from .joins import UnsafeRuleError, evaluate_body, order_body
from .relation import Relation

__all__ = ["SemiNaiveEvaluator", "NaiveEvaluator", "EvaluationResult"]


class EvaluationResult:
    """Derived relations plus the work counters of the run."""

    def __init__(self, relations: Dict[Predicate, Relation], counters: Counters):
        self.relations = relations
        self.counters = counters

    def relation(self, name: str, arity: int) -> Relation:
        predicate = Predicate(name, arity)
        if predicate not in self.relations:
            return Relation(name, arity)
        return self.relations[predicate]

    def __repr__(self) -> str:
        sizes = {str(p): len(r) for p, r in self.relations.items()}
        return f"EvaluationResult({sizes})"


class _BottomUpEvaluator:
    """Shared scaffolding: strata, lookups, head instantiation."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_iterations: int = 100_000,
        orderer=None,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.max_iterations = max_iterations
        # Optional body orderer: callable(body, initially_bound) ->
        # [(index, literal)], e.g. analysis.joinorder.CostBasedOrderer.
        # Defaults to the greedy bound-is-easier order.
        self._orderer = orderer

    def _order(self, body):
        if self._orderer is not None:
            return self._orderer.order(body)
        return order_body(body, self.registry)

    # -- helpers --------------------------------------------------------
    def _make_lookup(self, derived: Dict[Predicate, Relation]):
        def lookup(predicate: Predicate) -> Optional[Relation]:
            if predicate in derived:
                return derived[predicate]
            return self.database.get(predicate)

        return lookup

    @staticmethod
    def _head_row(rule: Rule, subst: Substitution) -> Tuple[Term, ...]:
        row = tuple(apply_substitution(arg, subst) for arg in rule.head.args)
        for value in row:
            if not is_ground(value):
                raise UnsafeRuleError(
                    f"head of {rule} not ground after body evaluation"
                )
        return row

    def _strata(self, program: Program) -> List[Set[Predicate]]:
        return program.strata()


class SemiNaiveEvaluator(_BottomUpEvaluator):
    """Stratified semi-naive fixpoint evaluation.

    Usage::

        result = SemiNaiveEvaluator(db).evaluate()
        rows = result.relation("sg", 2).rows()
    """

    def evaluate(
        self,
        program: Optional[Program] = None,
        stop_condition=None,
    ) -> EvaluationResult:
        """Evaluate ``program`` (default: the database's IDB).

        ``stop_condition(derived)`` — when provided, it is checked
        after every fixpoint round; returning True aborts evaluation
        early with the partially derived relations.  This implements
        existence checking: a boolean query can stop as soon as one
        witness appears (paper §5).
        """
        program = program if program is not None else self.database.program
        counters = Counters()
        derived: Dict[Predicate, Relation] = {}
        for stratum in self._strata(program):
            stopped = self._evaluate_stratum(
                program, stratum, derived, counters, stop_condition
            )
            if stopped:
                break
        return EvaluationResult(derived, counters)

    def _evaluate_stratum(
        self,
        program: Program,
        stratum: Set[Predicate],
        derived: Dict[Predicate, Relation],
        counters: Counters,
        stop_condition=None,
    ) -> bool:
        rules = [r for r in program if r.head.predicate in stratum]
        for predicate in stratum:
            derived.setdefault(predicate, Relation(predicate.name, predicate.arity))
        lookup = self._make_lookup(derived)

        ordered_bodies = {
            id(rule): self._order(rule.body) for rule in rules
        }
        recursive_slots: Dict[int, List[int]] = {}
        for rule in rules:
            slots = [
                i
                for i, lit in enumerate(rule.body)
                if lit.predicate in stratum and not lit.negated
            ]
            recursive_slots[id(rule)] = slots

        # Round 0: naive pass with (empty) stratum relations — derives
        # everything obtainable from lower strata and exit rules.
        delta: Dict[Predicate, Relation] = {
            p: Relation(p.name, p.arity) for p in stratum
        }
        # Stored EDB facts for a predicate that also has rules would be
        # shadowed by the derived relation; seed them explicitly.
        for predicate in stratum:
            stored = self.database.get(predicate)
            if stored is not None:
                for row in stored:
                    if derived[predicate].add(row):
                        delta[predicate].add(row)
        for rule in rules:
            for subst in evaluate_body(
                ordered_bodies[id(rule)], lookup, self.registry, {}, counters
            ):
                row = self._head_row(rule, subst)
                if derived[rule.head.predicate].add(row):
                    counters.derived_tuples += 1
                    delta[rule.head.predicate].add(row)
                else:
                    counters.duplicate_tuples += 1
        counters.iterations += 1
        if stop_condition is not None and stop_condition(derived):
            return True

        # Semi-naive rounds.
        while any(len(rel) for rel in delta.values()):
            counters.iterations += 1
            if counters.iterations > self.max_iterations:
                raise RuntimeError(
                    f"fixpoint did not converge within {self.max_iterations} iterations"
                )
            new_delta: Dict[Predicate, Relation] = {
                p: Relation(p.name, p.arity) for p in stratum
            }
            for rule in rules:
                slots = recursive_slots[id(rule)]
                if not slots:
                    continue
                for slot in slots:
                    literal = rule.body[slot]
                    overrides = {slot: delta[literal.predicate]}
                    for subst in evaluate_body(
                        ordered_bodies[id(rule)],
                        lookup,
                        self.registry,
                        {},
                        counters,
                        overrides=overrides,
                    ):
                        row = self._head_row(rule, subst)
                        if derived[rule.head.predicate].add(row):
                            counters.derived_tuples += 1
                            new_delta[rule.head.predicate].add(row)
                        else:
                            counters.duplicate_tuples += 1
            delta = new_delta
            if stop_condition is not None and stop_condition(derived):
                return True
        return False


class NaiveEvaluator(_BottomUpEvaluator):
    """Naive (Gauss-Seidel-free) fixpoint: recompute all rules each
    round until nothing new appears.  Exists as an oracle/baseline."""

    def evaluate(self, program: Optional[Program] = None) -> EvaluationResult:
        program = program if program is not None else self.database.program
        counters = Counters()
        derived: Dict[Predicate, Relation] = {}
        for stratum in self._strata(program):
            self._evaluate_stratum(program, stratum, derived, counters)
        return EvaluationResult(derived, counters)

    def _evaluate_stratum(
        self,
        program: Program,
        stratum: Set[Predicate],
        derived: Dict[Predicate, Relation],
        counters: Counters,
    ) -> None:
        rules = [r for r in program if r.head.predicate in stratum]
        for predicate in stratum:
            derived.setdefault(predicate, Relation(predicate.name, predicate.arity))
            stored = self.database.get(predicate)
            if stored is not None:
                derived[predicate].add_all(stored.rows())
        lookup = self._make_lookup(derived)
        ordered_bodies = {
            id(rule): self._order(rule.body) for rule in rules
        }
        changed = True
        while changed:
            counters.iterations += 1
            if counters.iterations > self.max_iterations:
                raise RuntimeError(
                    f"fixpoint did not converge within {self.max_iterations} iterations"
                )
            changed = False
            for rule in rules:
                for subst in evaluate_body(
                    ordered_bodies[id(rule)], lookup, self.registry, {}, counters
                ):
                    row = self._head_row(rule, subst)
                    if derived[rule.head.predicate].add(row):
                        counters.derived_tuples += 1
                        changed = True
                    else:
                        counters.duplicate_tuples += 1

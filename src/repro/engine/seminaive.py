"""Naive and semi-naive bottom-up fixpoint evaluation.

Semi-naive evaluation (ref [1]) is the workhorse under both classic
magic sets and the chain-split variant: after rewriting, the rewritten
program is handed to this evaluator.  The naive evaluator re-derives
everything each round and exists as a correctness oracle and as the
pedagogical baseline in benchmarks.

The semi-naive loop follows the full delta discipline for rules with
*multiple* recursive body occurrences (nonlinear recursion).  For a
rule with recursive slots :math:`i_1 < i_2 < \\dots < i_k`, round *n*
evaluates one variant per slot :math:`i_j` where

* slot :math:`i_j` reads the **delta** :math:`\\Delta P^{(n-1)}`,
* slots before :math:`i_j` read the **pre-round** relation
  :math:`P^{(n-2)}`,
* slots after :math:`i_j` read the **frozen full** relation
  :math:`P^{(n-1)}`,

so a combination of same-round tuples is derived exactly once instead
of once per slot.  All three versions are zero-copy generation windows
(:meth:`~repro.engine.relation.Relation.window`) over the single
append-only derived relation, whose indexes persist and grow
incrementally across rounds — no per-round delta relations and no
index rebuilds.

Both evaluators are stratified: negation is allowed as long as the
program is stratifiable (checked by :meth:`Program.strata`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term, is_ground
from ..datalog.unify import Substitution, apply_substitution
from .builtins import BuiltinRegistry, default_registry
from .counters import Counters
from .database import Database
from .joins import UnsafeRuleError, evaluate_body, order_body
from .relation import Relation

__all__ = [
    "SemiNaiveEvaluator",
    "NaiveEvaluator",
    "EvaluationResult",
    "delta_first_order",
    "head_row",
]


class EvaluationResult:
    """Derived relations plus the work counters of the run."""

    def __init__(self, relations: Dict[Predicate, Relation], counters: Counters):
        self.relations = relations
        self.counters = counters

    def relation(self, name: str, arity: int) -> Relation:
        """The derived relation for ``name/arity``.

        Unknown predicates get an empty relation that is *registered*
        in :attr:`relations`, so repeated calls return the same object
        and caller mutations are never silently lost.
        """
        predicate = Predicate(name, arity)
        relation = self.relations.get(predicate)
        if relation is None:
            relation = Relation(name, arity)
            self.relations[predicate] = relation
        return relation

    def __repr__(self) -> str:
        sizes = {str(p): len(r) for p, r in self.relations.items()}
        return f"EvaluationResult({sizes})"


def delta_first_order(
    rule: Rule, slot: int, registry: BuiltinRegistry
) -> List[Tuple[int, Literal]]:
    """A safe body order for the semi-naive variant whose delta sits at
    body position ``slot``: the delta literal leads (the delta window
    is the smallest relation in the join), and the remaining literals
    are greedily reordered with the delta's variables already bound.

    Public because incremental view maintenance (``repro.ivm``) builds
    the same delta-first variants for its insert-propagation and
    over-deletion rounds."""
    delta_literal = rule.body[slot]
    rest = [(i, lit) for i, lit in enumerate(rule.body) if i != slot]
    ordered_rest = order_body(
        [lit for _, lit in rest],
        registry,
        initially_bound={v.name for v in delta_literal.variables()},
    )
    return [(slot, delta_literal)] + [
        (rest[position][0], literal) for position, literal in ordered_rest
    ]


#: Backwards-compatible private alias (the evaluator below predates the
#: public name).
_delta_first_order = delta_first_order


def head_row(rule: Rule, subst: Substitution) -> Tuple[Term, ...]:
    """Instantiate ``rule``'s head under ``subst`` as a ground row.

    Raises :class:`UnsafeRuleError` when a head variable stays unbound —
    the same range-restriction check every bottom-up evaluator applies.
    Public so ``repro.ivm`` derives head rows with identical semantics.
    """
    row = tuple(apply_substitution(arg, subst) for arg in rule.head.args)
    for value in row:
        if not is_ground(value):
            raise UnsafeRuleError(
                f"head of {rule} not ground after body evaluation"
            )
    return row


class _BottomUpEvaluator:
    """Shared scaffolding: strata, lookups, head instantiation."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_iterations: int = 100_000,
        orderer=None,
        tracer=None,
        profiler=None,
        budget=None,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.max_iterations = max_iterations
        # Optional body orderer: callable(body, initially_bound) ->
        # [(index, literal)], e.g. analysis.joinorder.CostBasedOrderer.
        # Defaults to the greedy bound-is-easier order.
        self._orderer = orderer
        # Optional observe.Tracer.  None (the default) is the fast
        # path: the evaluation loop only ever pays `is not None`
        # branches for it.
        self.tracer = tracer
        # Optional profile.SpanProfiler, same discipline: None costs
        # only `is not None` branches; installed, it times every
        # fixpoint round and rule-variant body evaluation.
        self.profiler = profiler
        # Optional resilience.Budget, same discipline again: checked
        # per round, per derived tuple and per streamed substitution;
        # the checks only *read* the counters, so a no-op budget is
        # bit-identical to no budget.
        self.budget = budget

    def _order(self, body):
        if self._orderer is not None:
            return self._orderer.order(body)
        return order_body(body, self.registry)

    # -- helpers --------------------------------------------------------
    def _make_lookup(self, derived: Dict[Predicate, Relation]):
        def lookup(predicate: Predicate) -> Optional[Relation]:
            if predicate in derived:
                return derived[predicate]
            return self.database.get(predicate)

        return lookup

    @staticmethod
    def _head_row(rule: Rule, subst: Substitution) -> Tuple[Term, ...]:
        return head_row(rule, subst)

    def _strata(self, program: Program) -> List[Set[Predicate]]:
        return program.strata()


class SemiNaiveEvaluator(_BottomUpEvaluator):
    """Stratified semi-naive fixpoint evaluation.

    Usage::

        result = SemiNaiveEvaluator(db).evaluate()
        rows = result.relation("sg", 2).rows()
    """

    def evaluate(
        self,
        program: Optional[Program] = None,
        stop_condition=None,
    ) -> EvaluationResult:
        """Evaluate ``program`` (default: the database's IDB).

        ``stop_condition(derived)`` — when provided, it is checked
        after every newly derived tuple; returning True aborts
        evaluation early with the partially derived relations.  This
        implements existence checking: a boolean query stops as soon as
        one witness appears (paper §5), and because the join pipeline
        is streaming, the abort takes effect mid-join — the rest of the
        cross product is never enumerated.
        """
        program = program if program is not None else self.database.program
        counters = Counters()
        derived: Dict[Predicate, Relation] = {}
        profiler = self.profiler
        run_span = (
            profiler.begin("evaluate", "semi_naive")
            if profiler is not None
            else None
        )
        try:
            for stratum in self._strata(program):
                stopped = self._evaluate_stratum(
                    program, stratum, derived, counters, stop_condition
                )
                if stopped:
                    break
        finally:
            if profiler is not None:
                # end() unwinds any round/rule span left open by an
                # early stop or an evaluation error.
                profiler.end(
                    run_span,
                    derived=counters.derived_tuples,
                    iterations=counters.iterations,
                )
        return EvaluationResult(derived, counters)

    def _evaluate_stratum(
        self,
        program: Program,
        stratum: Set[Predicate],
        derived: Dict[Predicate, Relation],
        counters: Counters,
        stop_condition=None,
    ) -> bool:
        profiler = self.profiler
        if profiler is not None:
            # Rule ordering + EDB seeding is real per-stratum work;
            # attribute it instead of leaving it as container self time.
            setup_span = profiler.begin("stage", "stratum_setup")
        rules = [r for r in program if r.head.predicate in stratum]
        for predicate in stratum:
            derived.setdefault(predicate, Relation(predicate.name, predicate.arity))
        lookup = self._make_lookup(derived)

        ordered_bodies = {
            id(rule): self._order(rule.body) for rule in rules
        }
        # Recursive slots: positive body occurrences of same-stratum
        # predicates, by original body position (ascending).
        recursive_slots: Dict[int, List[int]] = {}
        for rule in rules:
            slots = [
                i
                for i, lit in enumerate(rule.body)
                if lit.predicate in stratum and not lit.negated
            ]
            recursive_slots[id(rule)] = slots
        # Per-variant body orders, computed once per stratum and reused
        # every round: the delta occurrence is probed *first* (it is
        # the smallest relation), and the rest of the body is reordered
        # around the variables it binds.  A pluggable orderer keeps its
        # own order for every variant.
        variant_orders: Dict[Tuple[int, int], List[Tuple[int, Literal]]] = {}
        for rule in rules:
            for slot in recursive_slots[id(rule)]:
                if self._orderer is not None:
                    variant_orders[(id(rule), slot)] = ordered_bodies[id(rule)]
                else:
                    variant_orders[(id(rule), slot)] = _delta_first_order(
                        rule, slot, self.registry
                    )

        # Stored EDB facts for a predicate that also has rules would be
        # shadowed by the derived relation; seed them explicitly.  They
        # form the initial delta.
        for predicate in stratum:
            stored = self.database.get(predicate)
            if stored is not None:
                for row in stored:
                    derived[predicate].add(row)

        # Generation watermarks into each derived relation's insertion
        # log: the previous round's new tuples live at [delta_lo, delta_hi),
        # the pre-round relation is [0, delta_lo), the frozen full
        # relation is [0, delta_hi).  Round 0 treats the EDB seed as the
        # incoming delta (pre-round empty).
        delta_lo: Dict[Predicate, int] = {p: 0 for p in stratum}
        delta_hi: Dict[Predicate, int] = {p: derived[p].mark() for p in stratum}

        if profiler is not None:
            profiler.end(setup_span, rules=len(rules))
        tracer = self.tracer
        budget = self.budget
        first_round = True
        round_no = 0
        while True:
            counters.iterations += 1
            if counters.iterations > self.max_iterations:
                raise RuntimeError(
                    f"fixpoint did not converge within {self.max_iterations} iterations"
                )
            if budget is not None:
                budget.check_round(counters.iterations, counters)
            round_no += 1
            if tracer is not None:
                tracer.round_start(
                    round_no, sorted(str(p) for p in stratum)
                )
            if profiler is not None:
                round_span = profiler.begin("round", f"round {round_no}")
                round_derived_before = counters.derived_tuples
            for rule in rules:
                slots = recursive_slots[id(rule)]
                if not slots:
                    # Exit rule: no same-stratum body occurrence — its
                    # support cannot grow inside this stratum, so one
                    # pass (round 0) saturates it.
                    if not first_round:
                        continue
                    if self._apply_rule(
                        rule, ordered_bodies[id(rule)], lookup, None,
                        derived, counters, stop_condition,
                    ):
                        return True
                    continue
                for j, slot in enumerate(slots):
                    slot_predicate = rule.body[slot].predicate
                    if delta_lo[slot_predicate] == delta_hi[slot_predicate]:
                        continue  # empty delta: this variant derives nothing
                    overrides = {
                        slot: derived[slot_predicate].window(
                            delta_lo[slot_predicate], delta_hi[slot_predicate]
                        )
                    }
                    for earlier in slots[:j]:
                        p = rule.body[earlier].predicate
                        overrides[earlier] = derived[p].window(0, delta_lo[p])
                    for later in slots[j + 1 :]:
                        p = rule.body[later].predicate
                        overrides[later] = derived[p].window(0, delta_hi[p])
                    if self._apply_rule(
                        rule, variant_orders[(id(rule), slot)], lookup,
                        overrides, derived, counters, stop_condition,
                        slot=slot,
                    ):
                        return True
            first_round = False
            progressed = False
            delta_sizes: Dict[str, int] = {} if tracer is not None else None
            for predicate in stratum:
                mark = derived[predicate].mark()
                if mark > delta_hi[predicate]:
                    progressed = True
                if tracer is not None:
                    delta_sizes[str(predicate)] = mark - delta_hi[predicate]
                delta_lo[predicate] = delta_hi[predicate]
                delta_hi[predicate] = mark
            if tracer is not None:
                tracer.round_end(round_no, delta_sizes)
            if profiler is not None:
                profiler.end(
                    round_span,
                    derived=counters.derived_tuples - round_derived_before,
                )
            if not progressed:
                return False

    def _apply_rule(
        self,
        rule: Rule,
        ordered_body,
        lookup,
        overrides,
        derived: Dict[Predicate, Relation],
        counters: Counters,
        stop_condition,
        slot: Optional[int] = None,
    ) -> bool:
        """Run one rule variant, appending new heads; True = stop."""
        target = derived[rule.head.predicate]
        tracer = self.tracer
        profiler = self.profiler
        budget = self.budget
        if tracer is not None or profiler is not None:
            # Per-tuple work stays branch-free with the tracer on: the
            # derived/duplicate deltas come from counter snapshots.
            before_derived = counters.derived_tuples
            before_duplicate = counters.duplicate_tuples
        if tracer is not None:
            stage_counts = [0] * len(ordered_body)
        else:
            stage_counts = None
        if profiler is not None:
            rule_span = profiler.begin("rule", str(rule))
        stopped = False
        for subst in evaluate_body(
            ordered_body, lookup, self.registry, {}, counters,
            overrides=overrides, stage_counts=stage_counts, budget=budget,
        ):
            row = self._head_row(rule, subst)
            if target.add(row):
                counters.derived_tuples += 1
                if budget is not None:
                    budget.check_tuple(counters)
                if stop_condition is not None and stop_condition(derived):
                    stopped = True
                    break
            else:
                counters.duplicate_tuples += 1
        if profiler is not None:
            profiler.end(
                rule_span,
                predicate=str(rule.head.predicate),
                slot=slot,
                derived=counters.derived_tuples - before_derived,
                duplicates=counters.duplicate_tuples - before_duplicate,
            )
        if tracer is not None:
            tracer.body_evaluated(
                "rule",
                ordered_body,
                stage_counts,
                rule=rule,
                slot=slot,
                derived=counters.derived_tuples - before_derived,
                duplicates=counters.duplicate_tuples - before_duplicate,
            )
        return stopped


class NaiveEvaluator(_BottomUpEvaluator):
    """Naive (Gauss-Seidel-free) fixpoint: recompute all rules each
    round until nothing new appears.  Exists as an oracle/baseline."""

    def evaluate(self, program: Optional[Program] = None) -> EvaluationResult:
        program = program if program is not None else self.database.program
        counters = Counters()
        derived: Dict[Predicate, Relation] = {}
        for stratum in self._strata(program):
            self._evaluate_stratum(program, stratum, derived, counters)
        return EvaluationResult(derived, counters)

    def _evaluate_stratum(
        self,
        program: Program,
        stratum: Set[Predicate],
        derived: Dict[Predicate, Relation],
        counters: Counters,
    ) -> None:
        rules = [r for r in program if r.head.predicate in stratum]
        for predicate in stratum:
            derived.setdefault(predicate, Relation(predicate.name, predicate.arity))
            stored = self.database.get(predicate)
            if stored is not None:
                derived[predicate].add_all(stored.rows())
        lookup = self._make_lookup(derived)
        ordered_bodies = {
            id(rule): self._order(rule.body) for rule in rules
        }
        budget = self.budget
        changed = True
        while changed:
            counters.iterations += 1
            if counters.iterations > self.max_iterations:
                raise RuntimeError(
                    f"fixpoint did not converge within {self.max_iterations} iterations"
                )
            if budget is not None:
                budget.check_round(counters.iterations, counters)
            changed = False
            for rule in rules:
                for subst in evaluate_body(
                    ordered_bodies[id(rule)], lookup, self.registry, {},
                    counters, budget=budget,
                ):
                    row = self._head_row(rule, subst)
                    if derived[rule.head.predicate].add(row):
                        counters.derived_tuples += 1
                        if budget is not None:
                            budget.check_tuple(counters)
                        changed = True
                    else:
                        counters.duplicate_tuples += 1

"""Rule-body evaluation: ordered nested-index joins over relations.

This module is the single join implementation every bottom-up
evaluator uses.  A rule body is evaluated left-to-right after a safety
reordering pass (:func:`order_body`): builtins and negated literals are
postponed until their input variables are bound, and among stored
literals the one with the most bound argument positions is probed first
(a greedy bound-is-easier SIPS, the same one the adornment machinery
assumes).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import Const, Struct, Term, Var, is_ground, term_variables
from ..datalog.unify import Substitution, apply_substitution, match, unify
from .builtins import BuiltinError, BuiltinRegistry
from .counters import Counters
from .relation import Relation, Row

__all__ = ["UnsafeRuleError", "order_body", "literal_solutions", "evaluate_body"]

RelationLookup = Callable[[Predicate], Optional[Relation]]


class UnsafeRuleError(ValueError):
    """A body cannot be ordered so every builtin/negation gets its
    inputs bound — the rule is unsafe for bottom-up evaluation."""


def _literal_bound_vars(literal: Literal, bound: Set[str]) -> Tuple[int, int]:
    """(number of argument positions fully bound, total positions)."""
    bound_positions = 0
    for arg in literal.args:
        if all(v.name in bound for v in term_variables(arg)):
            bound_positions += 1
    return bound_positions, literal.arity


def order_body(
    body: Sequence[Literal],
    registry: BuiltinRegistry,
    initially_bound: Iterable[str] = (),
) -> List[Tuple[int, Literal]]:
    """Return a safe evaluation order as (original_index, literal) pairs.

    Greedy: at each step prefer a *ready* builtin (cheap filter), then a
    ready negated literal, then the stored literal with the most bound
    argument positions.  Raises :class:`UnsafeRuleError` when only
    non-ready builtins/negations remain.
    """
    remaining: List[Tuple[int, Literal]] = list(enumerate(body))
    bound: Set[str] = set(initially_bound)
    ordered: List[Tuple[int, Literal]] = []

    def builtin_ready(literal: Literal) -> bool:
        builtin = registry.get(literal.predicate)
        if builtin is None:
            return False
        bound_positions = frozenset(
            i
            for i, arg in enumerate(literal.args)
            if all(v.name in bound for v in term_variables(arg))
        )
        return builtin.is_finite_under(bound_positions)

    def negation_ready(literal: Literal) -> bool:
        return all(v.name in bound for v in literal.variables())

    while remaining:
        chosen: Optional[int] = None
        # 1. ready builtins (filters / single-valued generators)
        for slot, (_, literal) in enumerate(remaining):
            if not literal.negated and registry.is_builtin(literal) and builtin_ready(literal):
                chosen = slot
                break
        # 2. ready negations
        if chosen is None:
            for slot, (_, literal) in enumerate(remaining):
                if literal.negated and negation_ready(literal):
                    chosen = slot
                    break
        # 3. stored literal with the most bound positions
        if chosen is None:
            best_score = -1
            for slot, (_, literal) in enumerate(remaining):
                if literal.negated or registry.is_builtin(literal):
                    continue
                score, _ = _literal_bound_vars(literal, bound)
                if score > best_score:
                    best_score = score
                    chosen = slot
        if chosen is None:
            stuck = ", ".join(str(lit) for _, lit in remaining)
            raise UnsafeRuleError(
                f"cannot order body safely; stuck on: {stuck} "
                f"(bound: {sorted(bound)})"
            )
        index, literal = remaining.pop(chosen)
        ordered.append((index, literal))
        for var in literal.variables():
            bound.add(var.name)
    return ordered


def literal_solutions(
    literal: Literal,
    relation: Relation,
    subst: Substitution,
    counters: Optional[Counters] = None,
) -> Iterator[Substitution]:
    """Solutions of a positive stored literal against ``relation``.

    Uses an index on the argument positions that are ground under
    ``subst``; remaining positions are matched/unified per row.
    """
    instantiated = [apply_substitution(arg, subst) for arg in literal.args]
    key_columns: List[int] = []
    key_values: List[Term] = []
    for position, arg in enumerate(instantiated):
        if is_ground(arg):
            key_columns.append(position)
            key_values.append(arg)
    if counters is not None:
        counters.join_probes += 1
    for row in relation.lookup(key_columns, key_values):
        result: Optional[Substitution] = subst
        for position, arg in enumerate(instantiated):
            if position in key_columns:
                # Fully ground and equal by index construction — but
                # compound ground args still need equality (index key
                # covers them exactly), so nothing to do.
                continue
            result = unify(arg, row[position], result)
            if result is None:
                break
        if result is not None:
            yield result


#: idb_solver(literal, substitution) -> iterator of extended
#: substitutions; used for predicates without a stored relation.
IdbSolver = Callable[[Literal, Substitution], Iterator[Substitution]]


def evaluate_body(
    ordered_body: Sequence[Tuple[int, Literal]],
    lookup: RelationLookup,
    registry: BuiltinRegistry,
    seed: Substitution,
    counters: Optional[Counters] = None,
    overrides: Optional[Dict[int, Relation]] = None,
    idb_solver: Optional[IdbSolver] = None,
) -> Iterator[Substitution]:
    """Evaluate an ordered body, yielding complete solutions.

    ``overrides`` maps *original* body indexes to replacement relations
    — semi-naive evaluation substitutes the delta relation for one
    occurrence of the recursive predicate this way.

    ``idb_solver`` handles literals with no stored relation (derived
    predicates): nested chain-split evaluation plugs the recursive
    evaluation of inner recursions in this way (paper §4.1).
    """
    substitutions: List[Substitution] = [seed]
    for original_index, literal in ordered_body:
        if not substitutions:
            return
        next_substitutions: List[Substitution] = []
        if literal.negated:
            relation = _resolve(literal, lookup, overrides, original_index)
            for subst in substitutions:
                ground_args = tuple(apply_substitution(a, subst) for a in literal.args)
                if any(not is_ground(a) for a in ground_args):
                    raise UnsafeRuleError(
                        f"negated literal {literal} not ground at evaluation time"
                    )
                if counters is not None:
                    counters.join_probes += 1
                if relation is None or ground_args not in relation:
                    next_substitutions.append(subst)
        elif registry.is_builtin(literal):
            for subst in substitutions:
                for solution in registry.solve(literal, subst):
                    next_substitutions.append(solution)
        else:
            relation = _resolve(literal, lookup, overrides, original_index)
            if relation is None and idb_solver is not None:
                for subst in substitutions:
                    for solution in idb_solver(literal, subst):
                        next_substitutions.append(solution)
            elif relation is None:
                return
            else:
                for subst in substitutions:
                    for solution in literal_solutions(
                        literal, relation, subst, counters
                    ):
                        next_substitutions.append(solution)
        substitutions = next_substitutions
        if counters is not None:
            counters.intermediate_tuples += len(substitutions)
    for subst in substitutions:
        yield subst


def _resolve(
    literal: Literal,
    lookup: RelationLookup,
    overrides: Optional[Dict[int, Relation]],
    original_index: int,
) -> Optional[Relation]:
    if overrides is not None and original_index in overrides:
        return overrides[original_index]
    return lookup(literal.predicate)

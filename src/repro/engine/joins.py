"""Rule-body evaluation: a streaming nested-index join pipeline.

This module is the single join implementation every bottom-up
evaluator uses.  A rule body is evaluated left-to-right after a safety
reordering pass (:func:`order_body`): builtins and negated literals are
postponed until their input variables are bound, and among stored
literals the one with the most bound argument positions is probed first
(a greedy bound-is-easier SIPS, the same one the adornment machinery
assumes).

:func:`evaluate_body` is a *true generator pipeline*: solutions flow
literal-to-literal through a backtracking stack of per-stage iterators,
so at any moment at most one substitution per body literal is live —
never a materialized intermediate list.  The paper's blowup argument
(weak linkage producing huge intermediate relations, §1) therefore
cannot reappear as peak evaluator memory: the high-water mark is the
body length, which :attr:`Counters.peak_intermediate` records.
Laziness also means a consumer that stops consuming (existence checks,
``stop_condition`` aborts) short-circuits the join mid-flight instead
of paying for the full cross product first.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import Const, Struct, Term, Var, is_ground, term_variables
from ..datalog.unify import Substitution, apply_substitution, match, unify
from .builtins import BuiltinError, BuiltinRegistry
from .counters import Counters
from .relation import Relation, RelationWindow, Row

__all__ = ["UnsafeRuleError", "order_body", "literal_solutions", "evaluate_body"]

#: Anything probe-able like a relation: a stored :class:`Relation` or a
#: generation :class:`RelationWindow` over one (semi-naive's pre-round,
#: delta and frozen-full versions).
RelationLike = Union[Relation, RelationWindow]

RelationLookup = Callable[[Predicate], Optional[RelationLike]]


class UnsafeRuleError(ValueError):
    """A body cannot be ordered so every builtin/negation gets its
    inputs bound — the rule is unsafe for bottom-up evaluation."""


def _literal_bound_vars(literal: Literal, bound: Set[str]) -> Tuple[int, int]:
    """(number of argument positions fully bound, total positions)."""
    bound_positions = 0
    for arg in literal.args:
        if all(v.name in bound for v in term_variables(arg)):
            bound_positions += 1
    return bound_positions, literal.arity


def order_body(
    body: Sequence[Literal],
    registry: BuiltinRegistry,
    initially_bound: Iterable[str] = (),
) -> List[Tuple[int, Literal]]:
    """Return a safe evaluation order as (original_index, literal) pairs.

    Greedy: at each step prefer a *ready* builtin (cheap filter), then a
    ready negated literal, then the stored literal with the most bound
    argument positions.  Raises :class:`UnsafeRuleError` when only
    non-ready builtins/negations remain.
    """
    remaining: List[Tuple[int, Literal]] = list(enumerate(body))
    bound: Set[str] = set(initially_bound)
    ordered: List[Tuple[int, Literal]] = []

    def builtin_ready(literal: Literal) -> bool:
        builtin = registry.get(literal.predicate)
        if builtin is None:
            return False
        bound_positions = frozenset(
            i
            for i, arg in enumerate(literal.args)
            if all(v.name in bound for v in term_variables(arg))
        )
        return builtin.is_finite_under(bound_positions)

    def negation_ready(literal: Literal) -> bool:
        return all(v.name in bound for v in literal.variables())

    while remaining:
        chosen: Optional[int] = None
        # 1. ready builtins (filters / single-valued generators)
        for slot, (_, literal) in enumerate(remaining):
            if not literal.negated and registry.is_builtin(literal) and builtin_ready(literal):
                chosen = slot
                break
        # 2. ready negations
        if chosen is None:
            for slot, (_, literal) in enumerate(remaining):
                if literal.negated and negation_ready(literal):
                    chosen = slot
                    break
        # 3. stored literal with the most bound positions
        if chosen is None:
            best_score = -1
            for slot, (_, literal) in enumerate(remaining):
                if literal.negated or registry.is_builtin(literal):
                    continue
                score, _ = _literal_bound_vars(literal, bound)
                if score > best_score:
                    best_score = score
                    chosen = slot
        if chosen is None:
            stuck = ", ".join(str(lit) for _, lit in remaining)
            raise UnsafeRuleError(
                f"cannot order body safely; stuck on: {stuck} "
                f"(bound: {sorted(bound)})"
            )
        index, literal = remaining.pop(chosen)
        ordered.append((index, literal))
        for var in literal.variables():
            bound.add(var.name)
    return ordered


def literal_solutions(
    literal: Literal,
    relation: RelationLike,
    subst: Substitution,
    counters: Optional[Counters] = None,
) -> Iterator[Substitution]:
    """Solutions of a positive stored literal against ``relation``.

    Uses an index on the argument positions that are ground under
    ``subst``; remaining positions are matched/unified per row.
    """
    instantiated = [apply_substitution(arg, subst) for arg in literal.args]
    key_columns: List[int] = []
    key_values: List[Term] = []
    for position, arg in enumerate(instantiated):
        if is_ground(arg):
            key_columns.append(position)
            key_values.append(arg)
    if counters is not None:
        counters.join_probes += 1
    for row in relation.lookup(key_columns, key_values):
        result: Optional[Substitution] = subst
        for position, arg in enumerate(instantiated):
            if position in key_columns:
                # Fully ground and equal by index construction — but
                # compound ground args still need equality (index key
                # covers them exactly), so nothing to do.
                continue
            result = unify(arg, row[position], result)
            if result is None:
                break
        if result is not None:
            yield result


#: idb_solver(literal, substitution) -> iterator of extended
#: substitutions; used for predicates without a stored relation.
IdbSolver = Callable[[Literal, Substitution], Iterator[Substitution]]

_EXHAUSTED = object()


def evaluate_body(
    ordered_body: Sequence[Tuple[int, Literal]],
    lookup: RelationLookup,
    registry: BuiltinRegistry,
    seed: Substitution,
    counters: Optional[Counters] = None,
    overrides: Optional[Dict[int, RelationLike]] = None,
    idb_solver: Optional[IdbSolver] = None,
    stage_counts: Optional[List[int]] = None,
    budget=None,
) -> Iterator[Substitution]:
    """Evaluate an ordered body, lazily yielding complete solutions.

    Solutions stream through the literals one at a time: stage *i*
    holds a single current substitution and an iterator of its
    extensions, so peak live substitutions equal the body length
    (recorded in :attr:`Counters.peak_intermediate`) instead of the
    size of the largest intermediate relation.  Consumers may abandon
    the iterator at any point — nothing beyond the solutions actually
    pulled is computed.

    ``overrides`` maps *original* body indexes to replacement relations
    (or :class:`~repro.engine.relation.RelationWindow` views) — the
    semi-naive evaluator substitutes its delta/pre-round/frozen
    generation windows for the recursive occurrences this way.

    ``idb_solver`` handles literals with no stored relation (derived
    predicates): nested chain-split evaluation plugs the recursive
    evaluation of inner recursions in this way (paper §4.1).

    ``stage_counts`` — when the tracer is on, a list of at least
    ``len(ordered_body)`` ints; slot *k* is incremented once per
    substitution stage *k* yields.  Since stage *k*'s input stream is
    exactly stage *k-1*'s output stream (the seed for *k = 0*), these
    counts alone determine every stage's observed expansion ratio.

    ``budget`` — optional :class:`~repro.resilience.Budget` ticked once
    per substitution popped off the stack.  This is the checkpoint that
    catches a pure cross-product blowup: a weak linkage producing
    millions of intermediate substitutions trips the budget mid-join
    even if no new head tuple is ever derived.
    """

    depth = len(ordered_body)
    if depth == 0:
        yield seed
        return

    # Pre-resolve each stage once per body evaluation: the relation a
    # literal probes (override window or lookup result) is fixed for
    # the whole evaluation, so none of that dispatch runs per tuple.
    _NEGATED, _BUILTIN, _STORED, _IDB = 0, 1, 2, 3
    stages: List[Tuple[int, Literal, object]] = []
    for original_index, literal in ordered_body:
        if literal.negated:
            kind = _NEGATED
            payload = _resolve(literal, lookup, overrides, original_index)
        elif registry.is_builtin(literal):
            kind = _BUILTIN
            payload = None
        else:
            payload = _resolve(literal, lookup, overrides, original_index)
            kind = _IDB if payload is None else _STORED
        stages.append((kind, literal, payload))

    def stage_solutions(stage: int, subst: Substitution) -> Iterator[Substitution]:
        kind, literal, relation = stages[stage]
        if kind == _STORED:
            # Inlined literal_solutions: index probe on the positions
            # ground under ``subst``, then unification of the rest —
            # without a second generator layer per substitution.
            instantiated = [
                apply_substitution(arg, subst) for arg in literal.args
            ]
            key_columns: List[int] = []
            key_values: List[Term] = []
            free_positions: List[int] = []
            for position, arg in enumerate(instantiated):
                if is_ground(arg):
                    key_columns.append(position)
                    key_values.append(arg)
                else:
                    free_positions.append(position)
            if counters is not None:
                counters.join_probes += 1
            for row in relation.lookup(key_columns, key_values):
                result: Optional[Substitution] = subst
                for position in free_positions:
                    result = unify(instantiated[position], row[position], result)
                    if result is None:
                        break
                if result is not None:
                    if counters is not None:
                        counters.intermediate_tuples += 1
                    yield result
        elif kind == _BUILTIN:
            if counters is not None:
                counters.builtin_evals += 1
            for solution in registry.solve(literal, subst):
                if counters is not None:
                    counters.intermediate_tuples += 1
                yield solution
        elif kind == _NEGATED:
            ground_args = tuple(apply_substitution(a, subst) for a in literal.args)
            if any(not is_ground(a) for a in ground_args):
                raise UnsafeRuleError(
                    f"negated literal {literal} not ground at evaluation time"
                )
            if counters is not None:
                counters.join_probes += 1
            if relation is None or ground_args not in relation:
                if counters is not None:
                    counters.intermediate_tuples += 1
                yield subst
        else:  # _IDB: no stored relation — delegate or fail the stage
            if idb_solver is None:
                return
            for solution in idb_solver(literal, subst):
                if counters is not None:
                    counters.intermediate_tuples += 1
                yield solution
    # Backtracking stack of per-stage iterators; stack[i] enumerates the
    # extensions of the stage-(i-1) substitution through literal i.
    stack: List[Iterator[Substitution]] = [stage_solutions(0, seed)]
    if counters is not None and counters.peak_intermediate < 1:
        counters.peak_intermediate = 1
    while stack:
        solution = next(stack[-1], _EXHAUSTED)
        if solution is _EXHAUSTED:
            stack.pop()
            continue
        if budget is not None:
            budget.tick(counters)
        if stage_counts is not None:
            # Every solution popped off stack[-1] is one output of
            # stage len(stack)-1 — a single branch covers all stages.
            stage_counts[len(stack) - 1] += 1
        if len(stack) == depth:
            yield solution
        else:
            stack.append(stage_solutions(len(stack), solution))
            if counters is not None and len(stack) > counters.peak_intermediate:
                counters.peak_intermediate = len(stack)


def _resolve(
    literal: Literal,
    lookup: RelationLookup,
    overrides: Optional[Dict[int, RelationLike]],
    original_index: int,
) -> Optional[RelationLike]:
    if overrides is not None and original_index in overrides:
        return overrides[original_index]
    return lookup(literal.predicate)

"""Work counters shared by every evaluator.

The paper's comparisons are about *work* — sizes of magic sets, numbers
of intermediate tuples, iterations to fixpoint — not wall-clock on 1992
hardware.  Every evaluator threads one :class:`Counters` instance
through its joins so the benchmark harness can report the same
quantities for each competing strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Counters"]


@dataclass
class Counters:
    """Mutable work counters for one evaluation run."""

    #: Tuples newly derived (inserted) into any relation.
    derived_tuples: int = 0
    #: Derivations that duplicated an existing tuple.
    duplicate_tuples: int = 0
    #: Index probes performed during joins.
    join_probes: int = 0
    #: Substitutions produced while evaluating rule bodies (one count
    #: per substitution flowing out of each join stage) — the paper's
    #: "intermediate relation" cost.
    intermediate_tuples: int = 0
    #: Builtin literal evaluations (one per ``registry.solve`` call).
    builtin_evals: int = 0
    #: Fixpoint iterations executed.
    iterations: int = 0
    #: Tuples pruned by pushed constraints (partial evaluation).
    pruned_tuples: int = 0
    #: Values buffered by buffered chain-split evaluation.
    buffered_values: int = 0
    #: Largest number of substitutions held live at once during any
    #: single rule-body evaluation.  A materializing join reports the
    #: longest intermediate list; the streaming pipeline reports its
    #: depth (bounded by the body length).  Merged with ``max``, not a
    #: sum — it is a high-water mark, not a total.
    peak_intermediate: int = 0

    def merge(self, other: "Counters") -> None:
        """Accumulate ``other`` into this instance."""
        self.derived_tuples += other.derived_tuples
        self.duplicate_tuples += other.duplicate_tuples
        self.join_probes += other.join_probes
        self.intermediate_tuples += other.intermediate_tuples
        self.builtin_evals += other.builtin_evals
        self.iterations += other.iterations
        self.pruned_tuples += other.pruned_tuples
        self.buffered_values += other.buffered_values
        self.peak_intermediate = max(self.peak_intermediate, other.peak_intermediate)

    def as_dict(self) -> Dict[str, int]:
        return {
            "derived_tuples": self.derived_tuples,
            "duplicate_tuples": self.duplicate_tuples,
            "join_probes": self.join_probes,
            "intermediate_tuples": self.intermediate_tuples,
            "builtin_evals": self.builtin_evals,
            "iterations": self.iterations,
            "pruned_tuples": self.pruned_tuples,
            "buffered_values": self.buffered_values,
            "peak_intermediate": self.peak_intermediate,
        }

    @property
    def total_work(self) -> int:
        """A single scalar proxy for evaluation effort."""
        return (
            self.join_probes
            + self.intermediate_tuples
            + self.derived_tuples
            + self.builtin_evals
        )

"""Work counters shared by every evaluator.

The paper's comparisons are about *work* — sizes of magic sets, numbers
of intermediate tuples, iterations to fixpoint — not wall-clock on 1992
hardware.  Every evaluator threads one :class:`Counters` instance
through its joins so the benchmark harness can report the same
quantities for each competing strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple

__all__ = ["Counters"]

#: Counters that are high-water marks: merged with ``max``, not summed.
_MAX_FIELDS = frozenset({"peak_intermediate"})

# Field-name cache, filled lazily on first merge/as_dict (the dataclass
# is not fully constructed at module top level).
_FIELD_NAMES: Tuple[str, ...] = ()


def _field_names() -> Tuple[str, ...]:
    global _FIELD_NAMES
    if not _FIELD_NAMES:
        _FIELD_NAMES = tuple(f.name for f in fields(Counters))
    return _FIELD_NAMES


@dataclass
class Counters:
    """Mutable work counters for one evaluation run."""

    #: Tuples newly derived (inserted) into any relation.
    derived_tuples: int = 0
    #: Derivations that duplicated an existing tuple.
    duplicate_tuples: int = 0
    #: Index probes performed during joins.
    join_probes: int = 0
    #: Substitutions produced while evaluating rule bodies (one count
    #: per substitution flowing out of each join stage) — the paper's
    #: "intermediate relation" cost.
    intermediate_tuples: int = 0
    #: Builtin literal evaluations (one per ``registry.solve`` call).
    builtin_evals: int = 0
    #: Fixpoint iterations executed.
    iterations: int = 0
    #: Tuples pruned by pushed constraints (partial evaluation).
    pruned_tuples: int = 0
    #: Values buffered by buffered chain-split evaluation.
    buffered_values: int = 0
    #: Largest number of substitutions held live at once during any
    #: single rule-body evaluation.  A materializing join reports the
    #: longest intermediate list; the streaming pipeline reports its
    #: depth (bounded by the body length).  Merged with ``max``, not a
    #: sum — it is a high-water mark, not a total.
    peak_intermediate: int = 0

    # merge/as_dict are derived from the dataclass fields so a newly
    # added counter can never silently fall out of either.
    def merge(self, other: "Counters") -> None:
        """Accumulate ``other`` into this instance (high-water-mark
        counters merge with ``max``)."""
        for name in _field_names():
            if name in _MAX_FIELDS:
                setattr(
                    self, name, max(getattr(self, name), getattr(other, name))
                )
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _field_names()}

    @property
    def total_work(self) -> int:
        """A single scalar proxy for evaluation effort."""
        return (
            self.join_probes
            + self.intermediate_tuples
            + self.derived_tuples
            + self.builtin_evals
        )

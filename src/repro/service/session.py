"""A long-lived query session: one Planner, two caches.

The one-shot library pays full planning cost per query — every
:class:`~repro.core.planner.Planner` construction re-rectifies and
re-classifies the whole rule base.  A :class:`QuerySession` amortizes
that across a query stream the way a serving system must:

* **plan cache** — executed plans are memoized under
  :func:`~repro.core.planner.plan_cache_key` (predicate, bound/free
  adornment, constraint shape), so ``sg(ann, Y)`` and ``sg(bob, Y)``
  share one compiled plan; a hit skips parsing-to-strategy planning
  entirely and only swaps the concrete literal in.
* **result cache** — a bounded LRU from the exact query text shape
  (constants included) to the answer rows, so a repeated query skips
  evaluation too.

Invalidation follows the database's split version counter
(:attr:`~repro.engine.database.Database.version`): any mutation flushes
the result cache; only IDB (rule) mutations flush the plan cache and
re-normalize the shared planner.  Both checks happen lazily at the next
request, so mutating through :meth:`add_fact`/:meth:`load_source` or
directly on the :class:`~repro.engine.database.Database` is equally
safe.

With ``ivm=True`` the session additionally owns a
:class:`~repro.ivm.ViewManager` and EDB mutations stop flushing the
result cache wholesale: cached results whose predicate closure does not
reach any mutated relation are *kept*, results over maintained or
stored-only predicates are *repaired* in place by re-filtering the
(incrementally maintained) materialized relations, and only the rest
are evicted.  Cache-miss queries on maintainable predicates are served
straight from the materialized view.  See :mod:`repro.ivm` and
``docs/ivm.md``.

A session is thread-safe: one re-entrant lock serializes planning and
evaluation (the evaluators share mutable relation state), while cache
hits return under the same lock in microseconds.  Many server threads
therefore share a single session, which is exactly how
:class:`~repro.service.server.QueryServer` uses it.
"""

from __future__ import annotations

import platform
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..analysis.cost import CostModel
from ..core.planner import Planner, QueryPlan, plan_cache_key
from ..datalog.literals import Literal
from ..datalog.rules import Rule
from ..datalog.terms import Term, Var
from ..datalog.unify import unify_sequences
from ..engine.builtins import BuiltinRegistry
from ..engine.counters import Counters
from ..engine.database import Database
from ..observe import (
    EngineTracer,
    FlightRecorder,
    WorkloadRecorder,
    build_report,
    current_id,
    merge_worker_trace,
    prometheus_text,
    register_session,
    snapshot_database,
)
from ..profile import SpanProfiler, chrome_trace, profile_report
from ..resilience import Budget, BudgetExceeded
from .metrics import ServiceMetrics

__all__ = ["QueryResult", "QuerySession"]


@dataclass
class QueryResult:
    """One answered query: rows plus how the answer was produced."""

    plan: QueryPlan
    rows: List[Tuple[Term, ...]]
    elapsed: float
    plan_cached: bool
    result_cached: bool
    counters: Optional[Counters] = None
    #: Answered by filtering a maintained materialized view instead of
    #: running the plan's evaluator (``ivm=True`` sessions only).
    via_view: bool = False

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    def bindings(self) -> List[Dict[str, Term]]:
        """Rows as variable-binding dicts, like ``Planner.query``."""
        out: List[Dict[str, Term]] = []
        for row in self.rows:
            binding: Dict[str, Term] = {}
            for arg, value in zip(self.plan.query.args, row):
                if isinstance(arg, Var):
                    binding[arg.name] = value
            out.append(binding)
        return out


class QuerySession:
    """Serve many queries against one database, caching plans/results."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        cost_model: Optional[CostModel] = None,
        max_depth: int = 10_000,
        result_cache_size: int = 256,
        metrics: Optional[ServiceMetrics] = None,
        slow_query_ms: Optional[float] = None,
        slowlog_size: int = 8,
        budget: Optional[Budget] = None,
        ivm: bool = False,
        reqlog_size: int = 256,
    ):
        self.database = database
        self.planner = Planner(
            database, registry=registry, cost_model=cost_model, max_depth=max_depth
        )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.result_cache_size = result_cache_size
        #: Slow-query forensics: with a threshold set, every evaluated
        #: (cache-miss) query runs under a span profiler, and queries
        #: at or over ``slow_query_ms`` land in a bounded ring of
        #: slowlog entries with their full span profile attached.
        #: None (the default) keeps evaluation profiler-free.
        self.slow_query_ms = slow_query_ms
        #: Default resource budget *template*: each evaluated query runs
        #: under a fresh fork() of it (restarted clock, cleared cancel)
        #: unless the caller passes a per-request budget.  None keeps
        #: evaluation budget-free.
        self.budget = budget
        self._slowlog: Deque[Dict[str, object]] = deque(
            maxlen=max(1, slowlog_size)
        )
        #: Where this session's slowlog entries are evaluated: "inline"
        #: for in-process sessions, "worker" inside a forked evaluator
        #: (set by the pool's child bootstrap).  Entries carry it so a
        #: merged parent slowlog stays attributable.
        self.slowlog_origin = "inline"
        #: Always-on per-request stage-timeline ring (REQLOG verb,
        #: ``GET /reqlog``).  Servers mint records into it; committed
        #: records feed the stage-latency histograms.  ``reqlog_size=0``
        #: disables recording.
        self.lifecycle = FlightRecorder(reqlog_size)
        # Commit parks each record on a pending queue; the histograms
        # catch up lazily whenever the metrics are actually read.
        self.metrics.stage_drain = (
            lambda: self.lifecycle.drain_metrics(self.metrics)
        )
        #: Always-available workload recorder (RECORD verb,
        #: ``--record``); inert until :meth:`start_capture` opens an
        #: archive, after which both servers' lifecycle taps feed it.
        self.capture = WorkloadRecorder()
        #: Optional durability manager (``repro.persist``), installed by
        #: :meth:`attach_persistence`.  The WAL itself hangs off the
        #: database's mutation path; the session's role is checkpoint
        #: pacing (under its lock) and exposing persist stats.
        self.persist = None
        register_session(self)
        #: Wall-clock start stamp, for display only (slowlog-style "at"
        #: fields).  Uptime is tracked on the monotonic clock so HEALTH
        #: never jumps or goes negative across NTP steps.
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._lock = threading.RLock()
        self._plan_cache: Dict[object, QueryPlan] = {}
        # LRU: key -> (plan, rows); dict preserves insertion order and
        # move-to-end is pop+reinsert.
        self._result_cache: Dict[object, Tuple[QueryPlan, List[Tuple[Term, ...]]]] = {}
        # Source text parses identically forever, so this memo needs no
        # version invalidation — just a size cap against unbounded text.
        self._parse_cache: Dict[str, Tuple[Literal, List[Literal]]] = {}
        self._seen_version = database.version
        #: Report of the most recent explain() call (TRACE verb).
        self._last_trace: Optional[Dict[str, object]] = None
        #: Report of the most recent profile() call (``--profile-json``).
        self._last_profile: Optional[Dict[str, object]] = None
        #: Incremental view maintenance (opt-in): selective cache
        #: invalidation, in-place result repair and view-served answers.
        self.views = None
        self._seen_relation_versions: Dict[object, int] = {}
        if ivm:
            from ..ivm import ViewManager

            self.views = ViewManager(
                database, self.planner.registry, metrics=self.metrics
            )
            self._seen_relation_versions = dict(database.relation_versions)

    # ------------------------------------------------------------------
    # Cache coherence
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Reconcile caches with the database's version counters.

        Must be called with the lock held.  Without IVM, any mutation
        invalidates cached *answers*; only rule changes invalidate
        cached *plans* (and the planner's normalized-program snapshot,
        via ``Planner.refresh``).

        With IVM, an EDB-only drift consults the dependency graph
        instead of flushing: cached results whose predicate closure is
        disjoint from the mutated relations are kept as-is, results
        that can be re-filtered from maintained views (or straight
        from a stored relation) are repaired in place, and only the
        remainder is evicted.
        """
        version = self.database.version
        if version == self._seen_version:
            return
        idb_changed = version[1] != self._seen_version[1]
        if idb_changed or self.views is None:
            self._result_cache.clear()
            if idb_changed:
                self._plan_cache.clear()
                self.planner.refresh()
                if self.views is not None:
                    self.views.on_idb_change()
            self._seen_version = version
            if self.views is not None:
                self._seen_relation_versions = dict(
                    self.database.relation_versions
                )
            self.metrics.record_invalidation(plans=idb_changed)
            return
        # EDB-only drift with IVM: selective invalidation + repair.
        current = self.database.relation_versions
        mutated = {
            predicate
            for predicate, counter in current.items()
            if self._seen_relation_versions.get(predicate) != counter
        }
        pending = self.views.drain_pending()
        kept = repaired = evicted = 0
        for key, (plan, rows) in list(self._result_cache.items()):
            predicate = plan.query.predicate
            if self.views.closure(predicate).isdisjoint(mutated):
                kept += 1
                continue
            repaired_rows = self._patch_rows(plan, rows, pending.get(predicate))
            if repaired_rows is None:
                repaired_rows = self._repair_rows(plan)
            if repaired_rows is None:
                del self._result_cache[key]
                evicted += 1
            else:
                self._result_cache[key] = (plan, repaired_rows)
                self.views.register_shape(plan).repairs += 1
                repaired += 1
        self._seen_version = version
        self._seen_relation_versions = dict(current)
        if evicted:
            self.metrics.record_invalidation(plans=False)
        if kept or repaired:
            self.metrics.record_ivm_sync(kept=kept, repaired=repaired)

    def _patch_rows(
        self,
        plan: QueryPlan,
        rows: List[Tuple[Term, ...]],
        delta: Optional[Dict[object, int]],
    ) -> Optional[List[Tuple[Term, ...]]]:
        """Apply the predicate's net row delta to a cached result.

        O(|delta|) instead of re-filtering the whole view: each changed
        row is matched against the query's constants (and, for
        additions, its residual constraints) and folded into the cached
        answer set.  Returns ``None`` when the delta log is not
        authoritative for this predicate — no materialization, or a
        dirty one (skipped/failed maintenance) whose drift the log
        never saw — and the caller must fall back to a full repair.
        """
        predicate = plan.query.predicate
        if self.views.graph.is_idb(predicate):
            fix = self.views.fixpoints.get(predicate)
            if fix is None or fix.dirty:
                return None
        if not delta:
            return rows
        from ..engine.relation import Relation

        adds = Relation(plan.query.name, plan.query.arity)
        dels = set()
        for row, sign in delta.items():
            if unify_sequences(plan.query.args, row) is None:
                continue
            if sign < 0:
                dels.add(row)
            else:
                adds.add(row)
        if len(adds):
            adds = self.planner._apply_residual_constraints(
                plan, adds, Counters()
            )
        if not len(adds) and not dels:
            return rows
        merged = set(rows)
        merged.difference_update(dels)
        merged.update(adds)
        return sorted(merged, key=str)

    def _repair_rows(
        self, plan: QueryPlan
    ) -> Optional[List[Tuple[Term, ...]]]:
        """Re-filter a cached result from maintained state, or ``None``.

        ``None`` means no cheap repair exists (unmaterialized derived
        predicate, dirty view, or the filter itself failed) and the
        entry must be evicted.
        """
        try:
            relations = self.views.relations_for_repair(plan.query.predicate)
            if relations is None:
                return None
            answers = self.planner._filter(plan.query, relations)
            answers = self.planner._apply_residual_constraints(
                plan, answers, Counters()
            )
            return sorted(answers.rows(), key=str)
        except Exception:
            return None

    def _view_rows(
        self, plan: QueryPlan, budget: Optional[Budget]
    ) -> Optional[List[Tuple[Term, ...]]]:
        """Answer a cache-miss query from a maintained view, or ``None``.

        Only maintainable closures are served this way (the manager
        refuses the rest); the filter applies the query's constants and
        residual constraints exactly like plan execution would.
        """
        relations = self.views.relations_for_query(
            plan.query.predicate, budget=budget
        )
        if relations is None:
            return None
        answers = self.planner._filter(plan.query, relations)
        answers = self.planner._apply_residual_constraints(
            plan, answers, Counters()
        )
        self.views.register_shape(plan).hits += 1
        self.metrics.record_view_serve()
        return sorted(answers.rows(), key=str)

    def cache_sizes(self) -> Dict[str, int]:
        with self._lock:
            return {
                "plan_cache": len(self._plan_cache),
                "result_cache": len(self._result_cache),
            }

    def clear_caches(self) -> None:
        with self._lock:
            self._plan_cache.clear()
            self._result_cache.clear()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _parse(self, query_source) -> Tuple[Literal, List[Literal]]:
        if not isinstance(query_source, str):
            return self.planner._parse(query_source)
        hit = self._parse_cache.get(query_source)
        if hit is None:
            hit = self.planner._parse(query_source)
            if len(self._parse_cache) >= 4096:
                self._parse_cache.clear()
            self._parse_cache[query_source] = hit
        return hit

    def plan(self, query_source) -> Tuple[QueryPlan, bool]:
        """The plan for a query and whether it came from the cache."""
        start = time.perf_counter()
        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            plan, cached = self._plan_locked(query, constraints)
            self.metrics.record_plan(cached)
            self.metrics.record_verb("PLAN", time.perf_counter() - start)
            return plan, cached

    def _plan_locked(
        self, query: Literal, constraints: List[Literal]
    ) -> Tuple[QueryPlan, bool]:
        key = plan_cache_key(query, constraints)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached.rebind(query, constraints), True
        plan = self.planner.plan([query, *constraints])
        self._plan_cache[key] = plan
        return plan, False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query_source,
        max_depth: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> QueryResult:
        """Answer a query, going through both caches.

        ``max_depth`` temporarily overrides the session's chain-depth
        budget for this one request (the server's per-request budget).
        ``budget`` runs the evaluation under a per-request resource
        budget (default: a fork of the session's budget template, if
        any); a blown budget raises
        :class:`~repro.resilience.BudgetExceeded` *after* recording
        the per-verb latency, so the histogram never loses the request.
        """
        start = time.perf_counter()
        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            result_key = (str(query), tuple(str(c) for c in constraints))
            hit = self._result_cache.get(result_key)
            if hit is not None:
                # LRU touch: reinsert at the most-recent end.
                del self._result_cache[result_key]
                self._result_cache[result_key] = hit
                plan, rows = hit
                elapsed = time.perf_counter() - start
                self.metrics.record_query(
                    plan.strategy, elapsed, plan_cached=True, result_cached=True
                )
                self.metrics.record_verb("QUERY", elapsed)
                return QueryResult(plan, list(rows), elapsed, True, True)

            # Slow-query forensics: profile every evaluated query so an
            # offender's span breakdown is already in hand when the
            # threshold trips — a retrospective re-run would not
            # reproduce cold caches.
            profiler = (
                SpanProfiler() if self.slow_query_ms is not None else None
            )
            if budget is None and self.budget is not None:
                budget = self.budget.fork()
            self.planner.profiler = profiler
            self.planner.budget = budget
            saved_depth = self.planner.max_depth
            if max_depth is not None:
                self.planner.max_depth = max_depth
            via_view = False
            counters: Optional[Counters] = None
            try:
                plan, plan_cached = self._plan_locked(query, constraints)
                rows = (
                    self._view_rows(plan, budget)
                    if self.views is not None
                    else None
                )
                if rows is None:
                    answers, counters = self.planner.execute(plan)
                    rows = sorted(answers.rows(), key=str)
                else:
                    via_view = True
            except BudgetExceeded:
                # The request still happened: record its latency (the
                # disconnect/timeout path depends on the histogram not
                # losing aborted queries) and the blowout itself.
                self.metrics.record_budget_exceeded()
                self.metrics.record_verb("QUERY", time.perf_counter() - start)
                raise
            finally:
                self.planner.max_depth = saved_depth
                self.planner.profiler = None
                self.planner.budget = None
            self._result_cache[result_key] = (plan, rows)
            while len(self._result_cache) > self.result_cache_size:
                oldest = next(iter(self._result_cache))
                del self._result_cache[oldest]
            elapsed = time.perf_counter() - start
            self.metrics.record_query(
                plan.strategy,
                elapsed,
                plan_cached=plan_cached,
                result_cached=False,
                counters=counters,
            )
            self.metrics.record_verb("QUERY", elapsed)
            if (
                profiler is not None
                and elapsed * 1e3 >= self.slow_query_ms
            ):
                self._retain_slow(
                    query,
                    plan,
                    plan_cached,
                    rows,
                    elapsed,
                    counters if counters is not None else Counters(),
                    profiler,
                    request_id=(
                        getattr(budget, "request_id", None) or current_id()
                    ),
                )
            return QueryResult(
                plan,
                list(rows),
                elapsed,
                plan_cached,
                False,
                counters,
                via_view=via_view,
            )

    def _retain_slow(
        self,
        query: Literal,
        plan: QueryPlan,
        plan_cached: bool,
        rows: List[Tuple[Term, ...]],
        elapsed: float,
        counters: Counters,
        profiler: SpanProfiler,
        request_id: Optional[str] = None,
    ) -> None:
        """Append one slowlog entry (lock held by the caller)."""
        entry: Dict[str, object] = {
            "at": time.time(),
            "query": str(query),
            "strategy": plan.strategy,
            "elapsed_ms": elapsed * 1e3,
            "threshold_ms": self.slow_query_ms,
            "answers": len(rows),
            "plan_cached": plan_cached,
            "origin": self.slowlog_origin,
            "request_id": request_id,
            "counters": counters.as_dict(),
            "profile": profile_report(profiler, counters),
            "chrome_trace": chrome_trace(
                profiler, process_name=f"repro slow: {query}"
            ),
        }
        self._slowlog.append(entry)
        self.metrics.record_slow_query()

    def explain(
        self,
        query_source,
        max_depth: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> Dict[str, object]:
        """Answer a query with tracing on and return the EXPLAIN report.

        A fresh :class:`~repro.observe.EngineTracer` is installed on
        the shared planner for the duration of the evaluation (still
        under the session lock, so concurrent queries never see it).
        The result cache is bypassed — a cache hit would produce an
        empty trace — but the answer still lands in it, and the plan
        cache works as usual.  The report (see
        :func:`~repro.observe.build_report`) is also retained as
        :attr:`last_trace` for the server's argument-less ``TRACE``.
        """
        start = time.perf_counter()
        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            tracer = EngineTracer()
            profiler = SpanProfiler()
            if budget is None and self.budget is not None:
                budget = self.budget.fork()
            self.planner.tracer = tracer
            self.planner.profiler = profiler
            self.planner.budget = budget
            try:
                plan, plan_cached = self._plan_locked(query, constraints)
                saved_depth = self.planner.max_depth
                if max_depth is not None:
                    self.planner.max_depth = max_depth
                try:
                    answers, counters = self.planner.execute(plan)
                finally:
                    self.planner.max_depth = saved_depth
            except BudgetExceeded:
                self.metrics.record_budget_exceeded()
                self.metrics.record_verb("QUERY", time.perf_counter() - start)
                raise
            finally:
                self.planner.tracer = None
                self.planner.profiler = None
                self.planner.budget = None
            rows = sorted(answers.rows(), key=str)
            result_key = (str(query), tuple(str(c) for c in constraints))
            self._result_cache[result_key] = (plan, rows)
            while len(self._result_cache) > self.result_cache_size:
                oldest = next(iter(self._result_cache))
                del self._result_cache[oldest]
            elapsed = time.perf_counter() - start
            self.metrics.record_query(
                plan.strategy,
                elapsed,
                plan_cached=plan_cached,
                result_cached=False,
                counters=counters,
            )
            self.metrics.record_verb("QUERY", elapsed)
            report = build_report(
                tracer,
                plan=plan,
                cost_model=self.planner.cost_model,
                counters=counters,
                profile=profile_report(profiler, counters),
            )
            report["query"] = str(query)
            report["predicate"] = str(query.predicate)
            report["answers"] = len(rows)
            report["rows"] = [
                "(" + ", ".join(str(v) for v in row) + ")" for row in rows
            ]
            report["elapsed_ms"] = elapsed * 1e3
            report["plan_cached"] = plan_cached
            self._last_trace = report
            return report

    def profile(
        self,
        query_source,
        max_depth: Optional[int] = None,
        memory: bool = False,
        include_trace: bool = False,
        budget: Optional[Budget] = None,
    ) -> Dict[str, object]:
        """Answer a query with span profiling on; the attribution report.

        Like :meth:`explain` but with the profiler instead of the
        tracer: the result cache is bypassed (the answer still lands in
        it), and the report is :func:`~repro.profile.profile_report`
        plus query/strategy/answer fields.  ``memory=True`` adds
        tracemalloc net-allocation sampling; ``include_trace=True``
        embeds the Chrome-trace JSON under ``"chrome_trace"``.
        """
        start = time.perf_counter()
        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            profiler = SpanProfiler(memory=memory)
            if budget is None and self.budget is not None:
                budget = self.budget.fork()
            self.planner.profiler = profiler
            self.planner.budget = budget
            try:
                plan, plan_cached = self._plan_locked(query, constraints)
                saved_depth = self.planner.max_depth
                if max_depth is not None:
                    self.planner.max_depth = max_depth
                try:
                    answers, counters = self.planner.execute(plan)
                finally:
                    self.planner.max_depth = saved_depth
            except BudgetExceeded:
                self.metrics.record_budget_exceeded()
                self.metrics.record_verb("QUERY", time.perf_counter() - start)
                raise
            finally:
                self.planner.profiler = None
                self.planner.budget = None
                profiler.close()
            rows = sorted(answers.rows(), key=str)
            result_key = (str(query), tuple(str(c) for c in constraints))
            self._result_cache[result_key] = (plan, rows)
            while len(self._result_cache) > self.result_cache_size:
                oldest = next(iter(self._result_cache))
                del self._result_cache[oldest]
            elapsed = time.perf_counter() - start
            self.metrics.record_query(
                plan.strategy,
                elapsed,
                plan_cached=plan_cached,
                result_cached=False,
                counters=counters,
            )
            self.metrics.record_verb("QUERY", elapsed)
            report = profile_report(profiler, counters)
            report["query"] = str(query)
            report["predicate"] = str(query.predicate)
            report["strategy"] = plan.strategy
            report["answers"] = len(rows)
            report["elapsed_ms"] = elapsed * 1e3
            report["plan_cached"] = plan_cached
            if include_trace:
                report["chrome_trace"] = chrome_trace(
                    profiler, process_name=f"repro: {query}"
                )
            self._last_profile = report
            return report

    # ------------------------------------------------------------------
    # Degraded answers (circuit-breaker support)
    # ------------------------------------------------------------------
    def plan_key(self, query_source) -> object:
        """The plan-cache key of a query — the circuit breaker's key.

        Parsing only (memoized); no planning or evaluation happens.
        """
        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            return plan_cache_key(query, constraints)

    def peek_cached(
        self, query_source
    ) -> Optional[Tuple[QueryPlan, List[Tuple[Term, ...]]]]:
        """The cached (plan, rows) for a query, or None — never
        evaluates.  Used to serve stale-but-real answers while the
        circuit breaker is open."""
        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            result_key = (str(query), tuple(str(c) for c in constraints))
            hit = self._result_cache.get(result_key)
            if hit is None:
                return None
            plan, rows = hit
            return plan, list(rows)

    def exists(self, query_source, budget: Optional[Budget] = None) -> bool:
        """Existence-only probe: does the query have *any* answer?

        First-witness SLD evaluation under ``budget`` — the degraded
        answer the breaker serves when full evaluation keeps blowing
        up.  May itself raise :class:`~repro.resilience.BudgetExceeded`
        when even finding one witness is over budget.
        """
        from ..core.existence import ExistenceChecker

        with self._lock:
            self._sync()
            query, constraints = self._parse(query_source)
            checker = ExistenceChecker(
                self.database, self.planner.registry, budget=budget
            )
            found, _counters = checker.exists_top_down(
                [query, *constraints]
            )
            return found

    # ------------------------------------------------------------------
    # Slow-query log / health
    # ------------------------------------------------------------------
    def slowlog(self) -> List[Dict[str, object]]:
        """Retained slow-query entries, most recent first."""
        with self._lock:
            return [dict(entry) for entry in reversed(self._slowlog)]

    def clear_slowlog(self) -> int:
        """Drop all retained entries; returns how many were dropped."""
        with self._lock:
            dropped = len(self._slowlog)
            self._slowlog.clear()
            return dropped

    def adopt_slowlog(self, entries, record=None) -> int:
        """Fold worker-produced slowlog entries into this session's ring.

        A pooled query's slow-query forensics happen inside the forked
        evaluator, whose session (and slowlog) dies with the worker;
        the pool ships new entries back as an envelope sidecar and the
        parent adopts them here so ``SLOWLOG`` covers pooled queries
        exactly like in-process ones.  When the adopting request's
        lifecycle ``record`` is supplied, each entry's chrome trace is
        spliced with the parent's event-loop stage spans
        (:func:`~repro.observe.merge_worker_trace`) — one Perfetto view
        across both processes, correlated by the shared request id.
        """
        adopted = 0
        with self._lock:
            for entry in entries or ():
                entry = dict(entry)
                trace = entry.get("chrome_trace")
                if record is not None:
                    if entry.get("request_id") is None:
                        entry["request_id"] = record.id
                    if isinstance(trace, dict):
                        entry["chrome_trace"] = merge_worker_trace(
                            trace, record
                        )
                self._slowlog.append(entry)
                self.metrics.record_slow_query()
                adopted += 1
        return adopted

    def reqlog(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Recent request lifecycle records, most recent first."""
        return self.lifecycle.records(limit)

    def health(self) -> Dict[str, object]:
        """A cheap liveness/pressure summary (the ``/healthz`` body)."""
        snap = self.metrics.snapshot()
        with self._lock:
            slowlog_len = len(self._slowlog)
            caches = {
                "plan_cache": len(self._plan_cache),
                "result_cache": len(self._result_cache),
            }
        health: Dict[str, object] = {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_monotonic,
            "queries": snap["queries"],
            "errors": snap["errors"],
            "timeouts": snap["timeouts"],
            "slow_queries": snap["slow_queries"],
            "slow_query_ms": self.slow_query_ms,
            "slowlog": slowlog_len,
            "reqlog": len(self.lifecycle),
            "caches": caches,
            "database": {
                "edb_version": self.database.edb_version,
                "idb_version": self.database.idb_version,
                "facts": self.database.total_facts(),
                "rules": len(self.database.program),
            },
        }
        workers = snap.get("workers")
        if workers is not None:
            health["workers"] = workers
            # A pool stuck in kill-and-respawn loops must degrade
            # health rather than report ok: dead workers, or a burst of
            # recent respawns, both count.
            reasons = []
            size = workers.get("size", workers.get("workers", 0))
            alive = workers.get("alive")
            if alive is not None and size and alive < size:
                reasons.append(f"{size - alive}/{size} workers dead")
            recent = workers.get("recent_restarts")
            if recent is not None and recent >= 3:
                reasons.append(
                    f"{recent} worker respawns in the last minute"
                )
            if reasons:
                health["status"] = "degraded"
                health["degraded_reason"] = "; ".join(reasons)
        if self.views is not None:
            health["ivm_views"] = self.views.snapshot()
        if self.persist is not None:
            persist = self.persist.stats()
            health["persist"] = {
                "last_lsn": (persist.get("wal") or {}).get("last_lsn", 0),
                "checkpoints": persist["snapshot"]["checkpoints"],
                "recovery_seconds": persist.get("recovery_seconds"),
            }
        return health

    @property
    def last_trace(self) -> Optional[Dict[str, object]]:
        """The report of the most recent :meth:`explain`, if any."""
        with self._lock:
            return self._last_trace

    def remember_trace(self, report: Dict[str, object]) -> None:
        """Retain an EXPLAIN report as :attr:`last_trace`.

        The worker-pool dispatcher evaluates EXPLAIN in a forked
        evaluator process; the report crosses back as plain JSON and is
        parked here so the argument-less ``TRACE`` verb replays it just
        like an in-process EXPLAIN.
        """
        with self._lock:
            self._last_trace = report

    @property
    def last_profile(self) -> Optional[Dict[str, object]]:
        """The report of the most recent :meth:`profile`, if any."""
        with self._lock:
            return self._last_profile

    def metrics_text(self) -> str:
        """The session's metrics in Prometheus text exposition format."""
        return prometheus_text(self.stats())

    def answer_rows(self, query_source) -> List[Tuple[Term, ...]]:
        """Sorted answer rows (drop-in for ``Planner.answer_rows``)."""
        return self.execute(query_source).rows

    def query(self, query_source) -> List[Dict[str, Term]]:
        """Answers as variable bindings (drop-in for ``Planner.query``)."""
        return self.execute(query_source).bindings()

    # ------------------------------------------------------------------
    # Mutation passthroughs
    # ------------------------------------------------------------------
    # Mutating through the session serializes with in-flight
    # evaluation (the evaluators iterate the shared relations, so a
    # concurrent insert would blow up mid-join).  Mutating the
    # Database directly is still *coherent* — the version counters
    # invalidate at the next request — but not safe while another
    # thread is evaluating.
    def add_fact(self, name: str, values: Sequence[object]) -> bool:
        start = time.perf_counter()
        with self._lock:
            added = self.database.add_fact(name, values)
            self._maybe_checkpoint()
        self.metrics.record_verb("FACT", time.perf_counter() - start)
        return added

    def retract_fact(self, name: str, values: Sequence[object]) -> bool:
        """Remove a fact; ``False`` when it was not stored."""
        start = time.perf_counter()
        with self._lock:
            removed = self.database.retract_fact(name, values)
            self._maybe_checkpoint()
        self.metrics.record_verb("RETRACT", time.perf_counter() - start)
        return removed

    def apply_batch(self, mutations):
        """Apply ``(op, name, values)`` mutations as one committed batch."""
        start = time.perf_counter()
        with self._lock:
            batch = self.database.apply_batch(mutations)
            self._maybe_checkpoint()
        self.metrics.record_verb("BATCH", time.perf_counter() - start)
        return batch

    def subscribable(self, predicate) -> Optional[str]:
        """Why ``predicate`` cannot stream deltas, or ``None`` if it can.

        Stored (EDB) predicates always can — their deltas come straight
        from the mutation batch.  Derived predicates need IVM enabled
        and a materializable closure; on success the view is
        materialized and pinned so every future batch produces a diff.
        """
        with self._lock:
            self._sync()
            if self.views is None:
                if predicate in self.database.program.head_predicates():
                    return (
                        f"{predicate} is derived and this session has "
                        "incremental view maintenance disabled; start the "
                        "session with ivm=True (CLI: --ivm) to subscribe "
                        "to derived predicates"
                    )
                return None
            return self.views.ensure_pinned(predicate)

    def add_rule(self, rule: Rule) -> None:
        start = time.perf_counter()
        with self._lock:
            self.database.add_rule(rule)
            self._maybe_checkpoint()
        self.metrics.record_verb("FACT", time.perf_counter() - start)

    def load_source(self, source: str) -> None:
        start = time.perf_counter()
        with self._lock:
            self.database.load_source(source)
            self._maybe_checkpoint()
        self.metrics.record_verb("FACT", time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def attach_persistence(self, manager) -> None:
        """Adopt a :class:`~repro.persist.PersistenceManager`.

        The manager's WAL is already attached to the database (every
        mutation above logs before returning); the session adds the
        two things that need its lock: checkpoint pacing after
        mutations, and a consistent snapshot when one is cut.
        """
        with self._lock:
            self.persist = manager

    def _maybe_checkpoint(self) -> None:
        """Cut a checkpoint when due.  Caller holds the session lock."""
        if self.persist is not None:
            self.persist.maybe_checkpoint()

    # ------------------------------------------------------------------
    # Workload capture
    # ------------------------------------------------------------------
    def start_capture(self, path: str, origin: str = "unknown") -> Dict[str, object]:
        """Snapshot the EDB and start recording traffic to ``path``.

        The snapshot is taken under the session lock so no mutation
        lands between the recorded state and the first recorded
        request — the invariant replay correctness rests on.
        """
        with self._lock:
            snapshot = snapshot_database(self.database)
            return self.capture.start(path, snapshot, origin=origin)

    def stop_capture(self) -> Dict[str, object]:
        """Flush, fsync and close the active archive (idempotent)."""
        return self.capture.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Metrics snapshot plus cache/database state."""
        snap = self.metrics.snapshot()
        snap["caches"] = self.cache_sizes()
        snap["database"] = {
            "edb_version": self.database.edb_version,
            "idb_version": self.database.idb_version,
            "relations": len(self.database.relations),
            "facts": self.database.total_facts(),
            "rules": len(self.database.program),
        }
        if self.views is not None:
            snap["ivm_views"] = self.views.snapshot()
        if self.persist is not None:
            snap["persist"] = self.persist.stats()
        snap["uptime_s"] = time.monotonic() - self._started_monotonic
        # Lazy: the package __init__ imports the service layer, so a
        # module-level import here would be circular.
        from .. import __version__

        snap["build"] = {
            "version": __version__,
            "python": platform.python_version(),
        }
        return snap

    def __repr__(self) -> str:
        sizes = self.cache_sizes()
        return (
            f"QuerySession({self.database!r}, "
            f"{sizes['plan_cache']} plans, {sizes['result_cache']} results)"
        )

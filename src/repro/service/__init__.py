"""repro.service — the concurrent query-serving layer.

Turns the one-shot library into a compile-once/serve-many system:
:class:`QuerySession` owns a shared
:class:`~repro.core.planner.Planner` plus plan and result caches with
version-counter invalidation; :class:`QueryServer` exposes a session
over a threaded TCP line protocol (``QUERY``/``PLAN``/``FACT``/
``STATS``); :class:`AsyncQueryServer` serves the same protocol from a
``selectors`` event loop and dispatches heavy verbs to a
:class:`WorkerPool` of forked evaluator processes;
:class:`ServiceMetrics` aggregates per-query latency, cache hit rates
and strategy usage.  See ``docs/service.md``.
"""

from .metrics import LatencyStats, ServiceMetrics
from .session import QueryResult, QuerySession
from .server import QueryServer, serve
from .eventloop import AsyncQueryServer, serve_async
from .workers import WorkerPool, fork_available

__all__ = [
    "AsyncQueryServer",
    "LatencyStats",
    "QueryResult",
    "QueryServer",
    "QuerySession",
    "ServiceMetrics",
    "WorkerPool",
    "fork_available",
    "serve",
    "serve_async",
]

"""repro.service — the concurrent query-serving layer.

Turns the one-shot library into a compile-once/serve-many system:
:class:`QuerySession` owns a shared
:class:`~repro.core.planner.Planner` plus plan and result caches with
version-counter invalidation; :class:`QueryServer` exposes a session
over a threaded TCP line protocol (``QUERY``/``PLAN``/``FACT``/
``STATS``); :class:`ServiceMetrics` aggregates per-query latency,
cache hit rates and strategy usage.  See ``docs/service.md``.
"""

from .metrics import LatencyStats, ServiceMetrics
from .session import QueryResult, QuerySession
from .server import QueryServer, serve

__all__ = [
    "LatencyStats",
    "QueryResult",
    "QueryServer",
    "QuerySession",
    "ServiceMetrics",
    "serve",
]

"""A ``selectors``-based event-loop front end with evaluator workers.

The threaded server (:mod:`repro.service.server`) spends one OS thread
per connection — fine for tens of clients, hopeless for thousands of
mostly-idle subscribers — and evaluates every fixpoint under the GIL.
:class:`AsyncQueryServer` keeps the same line protocol, envelopes and
resilience ladder while changing the machinery underneath:

* **One event loop** (``selectors.DefaultSelector``) owns every socket.
  An idle connection costs one registered file descriptor and ~1 KiB of
  buffers, so thousands of idle clients fit in the default fd limit.
  Peer disconnects arrive as readiness events (``recv() == b""``)
  instead of the threaded server's per-poll ``MSG_PEEK`` probe.
* **Bounded per-connection outboxes** replace the pusher thread:
  replies and DELTA pushes are appended to the connection's outbox and
  drained when the socket reports writable.  A subscriber that stops
  reading accumulates backlog until ``push_backlog`` bytes, then is
  dropped (``repro_push_dropped_total``) — it never blocks the loop,
  other subscribers, or replies.
* **A dispatch thread pool** runs verb handlers off-loop, so a slow
  STATS or a saturated admission queue never stalls socket I/O.
  Requests on one connection stay strictly ordered (one in flight,
  FIFO queue behind it); requests across connections run concurrently.
* **Heavy verbs go to forked evaluator processes** — a
  :class:`~repro.service.workers.WorkerPool` — when ``workers > 0``
  and the platform can fork.  QUERY/PLAN/EXPLAIN/TRACE then evaluate
  on separate cores over copy-on-write database snapshots, refreshed
  whenever the per-relation version counters drift.  Budget blowouts,
  timeouts, cancellation-on-disconnect and the circuit-breaker ladder
  behave exactly as in-process; the parity tests pin the envelopes
  bit-identical.  With ``workers=0`` heavy verbs run in-process on the
  dispatch threads (the GIL-bound fallback, still event-loop fronted).

The AdmissionController and CircuitBreaker sit in the dispatcher —
requests are shed or degraded before touching a worker.  ``/metrics``
additionally exports ``repro_workers``, ``repro_worker_queue_depth``
and ``repro_worker_restarts_total`` via the pool's snapshot provider.
"""

from __future__ import annotations

import json
import logging
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Optional, Tuple

from ..datalog.literals import Predicate
from ..datalog.parser import parse_rule
from ..engine.counters import Counters
from ..engine.database import Database, MutationBatch
from ..observe import (
    RequestRecord,
    current_id,
    current_record,
    get_logger,
    log_event,
    mark_stage,
    set_active,
    set_verb,
)
from ..resilience import AdmissionController, Budget, BudgetExceeded, CircuitBreaker
from .server import (
    HEAVY_VERBS,
    MAX_DRAIN_BYTES,
    MAX_LINE_BYTES,
    ClientDisconnected,
    _do_record_verb,
    _error_envelope,
    _Subscriptions,
    http_response,
)
from .session import QuerySession
from .workers import (
    ClientGone,
    RemoteEvaluationError,
    WorkerDied,
    WorkerPool,
    fork_available,
)

__all__ = ["AsyncQueryServer", "serve_async"]

_log = get_logger("eventloop")

#: Sentinels queued in place of a request line when the peer sent an
#: oversized line (the second also closes after the error reply).
_OVERSIZED = b"\x00oversized"
_OVERSIZED_CLOSE = b"\x00oversized-close"

#: recv() chunk size on readable sockets.
_READ_CHUNK = 65536

#: Upper bound on one selector cycle, so the idle sweep always runs.
_TICK = 0.2


class _Connection:
    """Loop-side state for one client socket."""

    __slots__ = (
        "sock", "addr", "lock", "inbox", "outbox", "outbox_bytes",
        "requests", "inflight", "budget", "eof", "gone", "closed",
        "close_after_flush", "draining", "drained", "last_active",
        "registered_events", "frame_started", "client_label",
    )

    def __init__(self, sock: socket.socket, addr):
        self.sock = sock
        self.addr = addr
        #: "host:port" rendered once at accept — every request minted on
        #: this connection reuses it instead of re-formatting the peer.
        self.client_label = f"{addr[0]}:{addr[1]}" if addr else None
        #: perf_counter_ns stamp of the first byte of a partial frame
        #: still sitting in the inbox — the lifecycle record minted when
        #: the frame completes anchors its "read" stage here.
        self.frame_started: Optional[int] = None
        #: Guards outbox/requests/inflight/budget against the dispatch
        #: threads; the loop-only fields (inbox, draining, interest)
        #: need no lock.
        self.lock = threading.Lock()
        self.inbox = bytearray()
        self.outbox: deque = deque()
        self.outbox_bytes = 0
        #: Complete request lines not yet dispatched (FIFO; one in
        #: flight at a time keeps per-connection reply order).
        self.requests: deque = deque()
        self.inflight = False
        #: The in-flight request's budget (in-process fallback only);
        #: the loop cancels it when the peer vanishes.
        self.budget: Optional[Budget] = None
        self.eof = False
        #: The peer is gone and any in-flight evaluation should abort.
        self.gone = False
        self.closed = False
        self.close_after_flush = False
        self.draining = False
        self.drained = 0
        self.last_active = time.monotonic()
        self.registered_events = 0


class AsyncQueryServer:
    """Event-loop server over a shared :class:`QuerySession`.

    Protocol, envelopes, verbs and resilience semantics match
    :class:`~repro.service.server.QueryServer`; see that module's
    docstring for the verb table.  Differences are purely operational:
    ``workers`` forked evaluator processes serve the heavy verbs
    (``0`` = evaluate in-process), ``dispatch_threads`` bounds
    concurrent verb handling, ``push_backlog`` caps each connection's
    outbox, and there is no ``push_timeout`` — a stalled subscriber is
    detected by backlog growth, not blocked writes.
    """

    def __init__(
        self,
        session: QuerySession,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = None,
        max_depth: Optional[int] = None,
        workers: Optional[int] = None,
        dispatch_threads: Optional[int] = None,
        budget: Optional[Budget] = None,
        max_pending: Optional[int] = 64,
        verb_limits: Optional[Dict[str, int]] = None,
        retry_after: float = 1.0,
        idle_timeout: Optional[float] = None,
        breaker_threshold: Optional[int] = 3,
        breaker_cooldown: float = 5.0,
        push_backlog: int = 1_048_576,
        kill_grace: float = 1.0,
    ):
        self.session = session
        self.timeout = timeout
        self.max_depth = max_depth
        self.budget = budget
        self.retry_after = retry_after
        self.idle_timeout = idle_timeout
        self.push_backlog = push_backlog
        if workers is None:
            import os

            workers = (os.cpu_count() or 1) if fork_available() else 0
        self.pool: Optional[WorkerPool] = None
        if workers > 0 and fork_available():
            self.pool = WorkerPool(session, workers, kill_grace=kill_grace)
            session.metrics.worker_provider = self.pool.snapshot
        if dispatch_threads is None:
            dispatch_threads = max(8, workers + 4)
        self.dispatch_threads = dispatch_threads
        if max_pending is None:
            self.admission: Optional[AdmissionController] = None
        else:
            self.admission = AdmissionController(
                max_pending=max_pending,
                verb_limits=(
                    verb_limits if verb_limits is not None
                    else {"QUERY": dispatch_threads}
                ),
                retry_after=retry_after,
            )
        if breaker_threshold is None:
            self.breaker: Optional[CircuitBreaker] = None
        else:
            self.breaker = CircuitBreaker(
                threshold=breaker_threshold, cooldown=breaker_cooldown
            )
            session.metrics.breaker_provider = self.breaker.snapshot
        self.subscriptions = _Subscriptions()
        session.metrics.subscriber_provider = self.subscriptions.count

        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_threads, thread_name_prefix="repro-dispatch"
        )
        self._selector = selectors.DefaultSelector()
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(1024)
        self._listen.setblocking(False)
        self._selector.register(self._listen, selectors.EVENT_READ, "listen")
        # Wake pipe: dispatch threads poke the loop after touching an
        # outbox so write interest is (re)registered promptly.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._conns: set = set()
        #: Connections whose outbox/interest changed off-loop, and
        #: connections a dispatch thread asked to close.
        self._control_lock = threading.Lock()
        self._dirty: set = set()
        self._to_close: set = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Duration of the most recent between-selects processing pass
        #: — the event-loop lag gauge.  Written by the loop thread only;
        #: read lock-free by the metrics provider.
        self._last_cycle_s = 0.0
        session.metrics.eventloop_provider = self._eventloop_snapshot
        session.database.add_mutation_listener(self._on_mutation)

    @classmethod
    def for_database(cls, database: Database, **kwargs) -> "AsyncQueryServer":
        return cls(QuerySession(database), **kwargs)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._listen.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        self._loop()

    def start(self) -> "AsyncQueryServer":
        """Run the event loop on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._loop, name="repro-eventloop", daemon=True
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to return; safe from a signal
        handler (just an Event set plus a self-pipe write).  The
        caller's ``finally: server.shutdown()`` then runs the one real
        teardown path — same contract as the threaded server."""
        self._stop.set()
        self._wake()

    def shutdown(self) -> None:
        self.session.database.remove_mutation_listener(self._on_mutation)
        self._stop.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        # Graceful dispatcher drain: requests already running on a
        # dispatch thread finish (their WAL records are already
        # durable), queued-but-unstarted ones are cancelled — they were
        # never acknowledged, so dropping them loses nothing a client
        # was promised.
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # Python < 3.9: no cancel_futures
            self._executor.shutdown(wait=False)
        if self.pool is not None:
            self.pool.close()
        for conn in list(self._conns):
            self._close_conn(conn)
        try:
            self._selector.unregister(self._listen)
        except (KeyError, ValueError):
            pass
        self._listen.close()
        self._wake_r.close()
        self._wake_w.close()
        self._selector.close()
        # Final-snapshot hygiene (mirrors the threaded server): land
        # the deferred stage-latency samples in the histograms, close
        # any live capture archive cleanly, and flush + fsync +
        # checkpoint the durability store.
        self.session.lifecycle.drain_metrics(self.session.metrics)
        if self.session.capture.active:
            self.session.capture.stop()
        persist = getattr(self.session, "persist", None)
        if persist is not None:
            persist.close()

    def __enter__(self) -> "AsyncQueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Event loop (everything here runs on the loop thread)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        last_sweep = time.monotonic()
        while not self._stop.is_set():
            events = self._selector.select(timeout=_TICK)
            cycle_start = time.perf_counter()
            for key, mask in events:
                tag = key.data
                if tag == "listen":
                    self._accept()
                elif tag == "wake":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, InterruptedError):
                        pass
                else:
                    conn: _Connection = tag
                    if mask & selectors.EVENT_WRITE:
                        self._flush(conn)
                    if mask & selectors.EVENT_READ and not conn.closed:
                        self._on_readable(conn)
            self._process_control()
            now = time.monotonic()
            if self.idle_timeout is not None and now - last_sweep >= 1.0:
                last_sweep = now
                self._sweep_idle(now)
            # Everything since select() ran on the loop thread while no
            # socket was being served — that's the loop's lag.
            self._last_cycle_s = time.perf_counter() - cycle_start

    def _eventloop_snapshot(self) -> Dict[str, object]:
        """Loop gauges for /metrics (lag, connections, outbox depths).

        Reads are lock-free on purpose: each field is a GIL-atomic
        int/float read, and gauge scrapes tolerate a value one write
        stale.
        """
        conns = list(self._conns)
        total = 0
        biggest = 0
        for conn in conns:
            pending = conn.outbox_bytes
            total += pending
            if pending > biggest:
                biggest = pending
        return {
            "lag_s": self._last_cycle_s,
            "connections": len(conns),
            "outbox_bytes": total,
            "outbox_max_bytes": biggest,
        }

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listen.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            conn = _Connection(sock, addr)
            self._conns.add(conn)
            self._selector.register(sock, selectors.EVENT_READ, conn)
            conn.registered_events = selectors.EVENT_READ
            log_event(
                _log, logging.DEBUG, "accept",
                client=conn.client_label or "?",
            )

    def _process_control(self) -> None:
        with self._control_lock:
            dirty, self._dirty = self._dirty, set()
            to_close, self._to_close = self._to_close, set()
        for conn in to_close:
            dirty.discard(conn)
            # Closes requested with pending output flush first.
            with conn.lock:
                pending = conn.outbox_bytes > 0
            if pending and not conn.gone:
                conn.close_after_flush = True
                self._update_interest(conn)
            else:
                self._close_conn(conn)
        for conn in dirty:
            self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        if conn.closed:
            return
        events = 0
        if not conn.eof:
            events |= selectors.EVENT_READ
        with conn.lock:
            if conn.outbox:
                events |= selectors.EVENT_WRITE
        if events == conn.registered_events:
            return
        try:
            if conn.registered_events == 0:
                if events:
                    self._selector.register(conn.sock, events, conn)
            elif events == 0:
                self._selector.unregister(conn.sock)
            else:
                self._selector.modify(conn.sock, events, conn)
            conn.registered_events = events
        except (KeyError, ValueError, OSError):
            self._close_conn(conn)

    def _on_readable(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(_READ_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._on_peer_lost(conn)
            return
        if not chunk:
            self._on_eof(conn)
            return
        conn.last_active = time.monotonic()
        if conn.draining:
            # Mid-drain of an oversized line: discard until newline,
            # bounded by MAX_DRAIN_BYTES.
            idx = chunk.find(b"\n")
            if idx == -1:
                conn.drained += len(chunk)
                if conn.drained > MAX_DRAIN_BYTES:
                    conn.draining = False
                    self._enqueue(conn, _OVERSIZED_CLOSE)
                    conn.eof = True  # stop reading from this hoser
                    self._update_interest(conn)
                return
            conn.drained += idx + 1
            conn.draining = False
            self._enqueue(
                conn,
                _OVERSIZED_CLOSE
                if conn.drained > MAX_DRAIN_BYTES
                else _OVERSIZED,
            )
            chunk = chunk[idx + 1:]
            conn.drained = 0
            if not chunk:
                return
        if not conn.inbox:
            conn.frame_started = time.perf_counter_ns()
        conn.inbox += chunk
        while True:
            idx = conn.inbox.find(b"\n")
            if idx == -1:
                if len(conn.inbox) > MAX_LINE_BYTES:
                    conn.draining = True
                    conn.drained = len(conn.inbox)
                    conn.inbox.clear()
                    conn.frame_started = None
                break
            line = bytes(conn.inbox[: idx + 1])
            del conn.inbox[: idx + 1]
            if len(line) > MAX_LINE_BYTES:
                conn.frame_started = None
                self._enqueue(
                    conn,
                    _OVERSIZED_CLOSE
                    if len(line) > MAX_DRAIN_BYTES
                    else _OVERSIZED,
                )
            else:
                self._enqueue(conn, line, self._mint_record(conn))
        if conn.inbox and conn.frame_started is None:
            # Leftover bytes start the next frame; its read stage
            # begins now, not when its newline eventually arrives.
            conn.frame_started = time.perf_counter_ns()

    def _mint_record(self, conn: _Connection) -> Optional[RequestRecord]:
        """Mint a lifecycle record for one completed frame.

        ``frame_started`` (the first byte's arrival) anchors the read
        stage; pipelined frames completing in the same chunk fall back
        to "now".  Returns ``None`` when the recorder is disabled.
        """
        start_ns = conn.frame_started
        conn.frame_started = None
        recorder = self.session.lifecycle
        if not recorder.enabled:
            return None
        record = recorder.begin(
            client=conn.client_label, start_ns=start_ns
        )
        if record is not None:
            record.mark("read")
        return record

    def _on_peer_lost(self, conn: _Connection) -> None:
        """Hard socket error: abort everything immediately."""
        with conn.lock:
            conn.eof = True
            conn.gone = True
            budget = conn.budget
        if budget is not None:
            budget.cancel("client disconnected")
            log_event(
                _log, logging.INFO, "cancel",
                reason="peer lost",
                request_id=getattr(budget, "request_id", None),
            )
        self._close_conn(conn)

    def _on_eof(self, conn: _Connection) -> None:
        """Orderly EOF: this is the readiness-event disconnect signal.

        Queued (pipelined) requests still get served — the threaded
        server would have processed them too before noticing the close
        — but with nothing queued the in-flight request is cancelled
        right away, replacing the ``MSG_PEEK`` probe.
        """
        with conn.lock:
            conn.eof = True
            has_queued = bool(conn.requests) or conn.inflight
            budget = conn.budget
            flushing = conn.outbox_bytes > 0
            if not conn.requests:
                conn.gone = True
        if conn.gone and budget is not None:
            budget.cancel("client disconnected")
            log_event(
                _log, logging.INFO, "cancel",
                reason="client disconnected",
                request_id=getattr(budget, "request_id", None),
            )
        if not has_queued:
            if flushing:
                conn.close_after_flush = True
                self._update_interest(conn)
            else:
                self._close_conn(conn)
        else:
            self._update_interest(conn)  # drop read interest

    def _flush(self, conn: _Connection) -> None:
        while True:
            with conn.lock:
                if not conn.outbox:
                    break
                head, record = conn.outbox[0]
            try:
                sent = conn.sock.send(head)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._on_peer_lost(conn)
                return
            flushed = None
            with conn.lock:
                conn.outbox_bytes -= sent
                if sent == len(head):
                    conn.outbox.popleft()
                    flushed = record
                else:
                    conn.outbox[0] = (head[sent:], record)
            if flushed is not None:
                # The reply's last byte hit the kernel buffer: the
                # request's lifecycle is complete.
                flushed.mark("flush")
                self._finalize_record(flushed, "ok")
            if sent != len(head):
                break
        with conn.lock:
            done = not conn.outbox
        if done and conn.close_after_flush:
            self._close_conn(conn)
        elif done:
            self._update_interest(conn)

    def _sweep_idle(self, now: float) -> None:
        for conn in list(self._conns):
            if conn.closed or self.subscriptions.is_subscribed(conn):
                continue
            with conn.lock:
                busy = conn.inflight or bool(conn.requests)
            if busy:
                continue
            if now - conn.last_active > self.idle_timeout:
                log_event(
                    _log, logging.DEBUG, "idle_close",
                    idle_s=round(now - conn.last_active, 3),
                )
                self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            if conn.registered_events:
                self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        conn.registered_events = 0
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.discard(conn)
        self.subscriptions.drop_connection(conn)
        # Requests still queued (or replies still unflushed) will never
        # complete: commit their lifecycle records as aborted so REQLOG
        # shows the cut-off instead of silently losing them.
        with conn.lock:
            orphans = [
                record for _item, record in conn.requests
                if record is not None
            ]
            orphans.extend(
                record for _item, record in conn.outbox if record is not None
            )
            conn.requests.clear()
        for record in orphans:
            self._finalize_record(record, "aborted")

    def _finalize_record(
        self, record: Optional[RequestRecord], status: str
    ) -> None:
        if record is not None:
            record.finish(status)
            self.session.lifecycle.commit(record, self.session.metrics)

    # ------------------------------------------------------------------
    # Outbound bytes (called from dispatch threads and the loop)
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, BrokenPipeError, OSError):
            pass

    def _send_bytes(
        self, conn: _Connection, data: bytes,
        close_after: bool = False, push: bool = False,
        record: Optional[RequestRecord] = None,
    ) -> Optional[bool]:
        """Queue bytes on the connection's outbox.

        Returns ``True`` when queued, ``False`` when the connection is
        already closed, and ``None`` when ``push=True`` and queueing
        would overflow ``push_backlog`` (the stalled-subscriber
        signal).  Never blocks.  ``record`` rides the outbox with the
        bytes: the flush path finalizes it when the last byte leaves.
        """
        with conn.lock:
            if conn.closed:
                self._finalize_record(record, "aborted")
                return False
            if push and conn.outbox_bytes + len(data) > self.push_backlog:
                return None
            if record is not None:
                record.mark("outbox")
            conn.outbox.append((data, record))
            conn.outbox_bytes += len(data)
            if close_after:
                conn.close_after_flush = True
        with self._control_lock:
            self._dirty.add(conn)
        self._wake()
        return True

    def _request_close(self, conn: _Connection) -> None:
        with self._control_lock:
            self._to_close.add(conn)
        self._wake()

    # ------------------------------------------------------------------
    # Request pipeline (dispatch threads)
    # ------------------------------------------------------------------
    def _enqueue(
        self,
        conn: _Connection,
        raw: bytes,
        record: Optional[RequestRecord] = None,
    ) -> None:
        with conn.lock:
            conn.requests.append((raw, record))
            if conn.inflight:
                return
            conn.inflight = True
            raw, record = conn.requests.popleft()
        self._executor.submit(self._process, conn, raw, record)

    def _request_done(self, conn: _Connection) -> None:
        with conn.lock:
            if conn.requests:
                raw, record = conn.requests.popleft()
                self._executor.submit(self._process, conn, raw, record)
                return
            conn.inflight = False
            drained_after_eof = conn.eof
        if drained_after_eof:
            with conn.lock:
                conn.gone = True
            self._request_close(conn)

    def _process(
        self,
        conn: _Connection,
        raw: bytes,
        record: Optional[RequestRecord] = None,
    ) -> None:
        """Serve one queued request line and queue its reply."""
        try:
            if record is not None:
                # Time between frame completion and this thread picking
                # the request up — FIFO wait plus executor scheduling.
                record.mark("queue")
            close_after = False
            capture_line: Optional[str] = None
            if raw in (_OVERSIZED, _OVERSIZED_CLOSE):
                reply = _error_envelope(
                    "?", "ProtocolError",
                    f"request line over {MAX_LINE_BYTES} bytes",
                )
                close_after = raw is _OVERSIZED_CLOSE
            elif raw.startswith(b"GET "):
                if record is not None:
                    record.verb = "HTTP"
                    record.detail = raw.decode(
                        "utf-8", errors="replace"
                    ).strip()[:200]
                    record.mark("parse")
                body = http_response(self.session, raw)
                if record is not None:
                    record.mark("eval")
                    record.mark("serialize")
                self._send_bytes(conn, body, close_after=True, record=record)
                return
            else:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    return  # empty keep-alive line: no reply, no record
                if record is not None:
                    record.detail = line[:200]
                    # Guarded at the call site: this fires per request,
                    # and even a disabled log_event call costs a kwargs
                    # dict on the serving path.
                    if _log.isEnabledFor(logging.DEBUG):
                        log_event(
                            _log, logging.DEBUG, "dispatch",
                            request_id=record.id, line=record.detail,
                        )
                # set_active over the activate() context manager: this
                # dispatch thread owns the whole request, and the fast
                # path skips the per-request manager allocation.
                if record is not None:
                    set_active(record)
                try:
                    reply = self.handle_line(line, connection=conn)
                except ClientDisconnected:
                    self._finalize_record(record, "disconnected")
                    self._request_close(conn)
                    return
                finally:
                    if record is not None:
                        set_active(None)
                if record is not None:
                    record.mark("eval")
                capture_line = line
            wire = json.dumps(reply).encode("utf-8") + b"\n"
            if record is not None:
                record.mark("serialize")
            if capture_line is not None:
                # After serialization so the recorder's writer thread
                # can digest the exact wire bytes without re-dumping.
                capture = self.session.capture
                if capture.active:
                    capture.record(capture_line, reply, record, wire)
            self._send_bytes(conn, wire, close_after=close_after, record=record)
        except Exception:
            # A dispatch crash must never leak the connection's FIFO
            # slot; drop the connection instead of wedging it.
            self._finalize_record(record, "error")
            self._request_close(conn)
        finally:
            self._request_done(conn)

    # ------------------------------------------------------------------
    # Verb dispatch
    # ------------------------------------------------------------------
    def handle_line(
        self, line: str, connection: Optional[_Connection] = None
    ) -> Dict[str, object]:
        """Dispatch one request line to its verb handler.

        Same contract (and same envelopes) as the threaded server's
        ``handle_line`` — chaos and saturation tests drive this
        directly.
        """
        verb, _, argument = line.partition(" ")
        verb = verb.upper()
        argument = argument.strip()
        set_verb(verb)
        mark_stage("parse")
        handler = {
            "QUERY": self._do_query,
            "PLAN": self._do_plan,
            "FACT": self._do_fact,
            "RETRACT": self._do_retract,
            "SUBSCRIBE": self._do_subscribe,
            "UNSUBSCRIBE": self._do_unsubscribe,
            "STATS": self._do_stats,
            "EXPLAIN": self._do_explain,
            "TRACE": self._do_trace,
            "METRICS": self._do_metrics,
            "PROFILE": self._do_profile,
            "SLOWLOG": self._do_slowlog,
            "REQLOG": self._do_reqlog,
            "HEALTH": self._do_health,
            "RECORD": self._do_record,
        }.get(verb)
        if handler is None:
            return _error_envelope(
                verb, "ProtocolError", f"unknown verb {verb!r}; "
                "expected QUERY, PLAN, FACT, RETRACT, SUBSCRIBE, "
                "UNSUBSCRIBE, STATS, EXPLAIN, TRACE, METRICS, PROFILE, "
                "SLOWLOG, REQLOG, HEALTH or RECORD"
            )
        metered = self.admission is not None and verb in HEAVY_VERBS
        if metered and not self.admission.try_acquire(verb):
            self.session.metrics.record_rejected(verb)
            reply = _error_envelope(
                verb, "Overloaded",
                "server at capacity; retry after the indicated delay",
            )
            reply["retry_after"] = self.retry_after
            return reply
        mark_stage("admission")
        try:
            return handler(argument, connection)
        except ClientDisconnected:
            raise  # nothing to reply to; the connection is closing
        except FutureTimeoutError:
            self.session.metrics.record_timeout()
            return _error_envelope(
                verb, "Timeout", f"request exceeded {self.timeout}s budget"
            )
        except RemoteEvaluationError as exc:
            self.session.metrics.record_error()
            return _error_envelope(verb, exc.exc_type, str(exc))
        except Exception as exc:  # envelope instead of a dead connection
            self.session.metrics.record_error()
            return _error_envelope(verb, type(exc).__name__, str(exc))
        finally:
            if metered:
                self.admission.release(verb)

    def _strip(self, argument: str) -> str:
        if argument.startswith("?-"):
            argument = argument[2:].strip()
        if argument.endswith("."):
            argument = argument[:-1]
        return argument

    # -- budgets / cancellation ----------------------------------------
    def _budget_limits(self) -> Optional[Dict[str, Any]]:
        """The budget template's limits, as Budget(**kwargs) keys, with
        the server timeout folded in as a belt-and-braces deadline."""
        limits: Dict[str, Any] = {}
        if self.budget is not None:
            limits = {
                "max_tuples": self.budget.max_tuples,
                "max_live": self.budget.max_live,
                "max_rounds": self.budget.max_rounds,
                "timeout": self.budget.timeout,
                "max_memory_bytes": self.budget.max_memory_bytes,
            }
        if self.timeout is not None and (
            limits.get("timeout") is None or limits["timeout"] > self.timeout
        ):
            limits["timeout"] = self.timeout
        return {k: v for k, v in limits.items() if v is not None} or None

    def _local_budget(self, conn: Optional[_Connection]) -> Budget:
        """A per-request budget for in-process (no-pool) evaluation.

        The server timeout becomes the budget deadline (there is no
        wait loop to abandon the evaluation from), and the budget is
        parked on the connection so the loop cancels it on EOF.
        """
        if self.budget is not None:
            budget = self.budget.fork()
        else:
            budget = Budget()
        if self.timeout is not None and (
            budget.timeout is None or budget.timeout > self.timeout
        ):
            budget.timeout = self.timeout
            budget.deadline = budget.started_at + self.timeout
        budget.request_id = current_id()
        if conn is not None:
            with conn.lock:
                if conn.gone:
                    budget.cancel("client disconnected")
                conn.budget = budget
        return budget

    def _clear_budget(self, conn: Optional[_Connection]) -> None:
        if conn is not None:
            with conn.lock:
                conn.budget = None

    def _peer_gone_probe(self, conn: Optional[_Connection]):
        if conn is None:
            return None
        return lambda: conn.gone

    def _translate_local_budget(
        self, exc: BudgetExceeded, conn: Optional[_Connection]
    ) -> None:
        """In-process fallback: map a cancelled/deadline blowout onto
        the threaded server's surface (disconnect / Timeout)."""
        if exc.reason == "cancelled" and "client disconnected" in str(exc):
            self.session.metrics.record_disconnect()
            raise ClientDisconnected("client disconnected mid-request")
        if (
            exc.reason == "deadline"
            and self.budget is None
            and self.timeout is not None
        ):
            # The deadline was purely the server timeout we injected;
            # the threaded server would have rendered this as Timeout
            # without a budget envelope.
            raise FutureTimeoutError()

    # -- QUERY ----------------------------------------------------------
    def _record_query_metrics(self, payload: Dict[str, Any]) -> None:
        counters = (
            Counters(**payload["counters"]) if payload.get("counters") else None
        )
        self.session.metrics.record_query(
            payload["strategy"],
            payload["elapsed"],
            plan_cached=payload["plan_cached"],
            result_cached=payload["result_cached"],
            counters=counters,
        )
        self.session.metrics.record_verb("QUERY", payload["elapsed"])

    def _pool_execute(
        self,
        verb: str,
        source: str,
        conn: Optional[_Connection],
    ) -> Dict[str, Any]:
        """Dispatch to a worker, translating transport-level failures."""
        for attempt in (0, 1):
            try:
                payload = self.pool.execute(
                    verb,
                    source,
                    max_depth=self.max_depth,
                    limits=self._budget_limits(),
                    timeout=self.timeout,
                    peer_gone=self._peer_gone_probe(conn),
                )
                # For pooled verbs the worker round-trip *is* the
                # evaluation; stamping eval here (idempotent) lets the
                # trace merge below include the span.
                mark_stage("eval")
                # Worker-side slow-query forensics arrive as an
                # envelope sidecar; fold them into the parent's ring
                # (merging this request's stage spans into the chrome
                # trace) before the payload becomes a client reply.
                sidecar = payload.pop("slowlog", None)
                if sidecar:
                    self.session.adopt_slowlog(sidecar, current_record())
                return payload
            except ClientGone:
                self.session.metrics.record_disconnect()
                raise ClientDisconnected("client disconnected mid-request")
            except BudgetExceeded as exc:
                # The worker recorded the blowout in its own forked
                # metrics; replicate the session-level accounting the
                # in-process path gets from QuerySession.
                self.session.metrics.record_budget_exceeded()
                self.session.metrics.record_verb(
                    "QUERY", exc.elapsed or 0.0
                )
                raise
            except WorkerDied:
                if attempt == 1:
                    raise
        raise AssertionError("unreachable")

    def _do_query(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope("QUERY", "ProtocolError", "QUERY needs a query")
        source = self._strip(argument)
        key = None
        if self.breaker is not None:
            try:
                key = self.session.plan_key(source)
            except Exception:
                key = None  # parse errors surface from evaluation below
            if key is not None and not self.breaker.allow(key):
                return self._degraded_reply(source, key)
        try:
            if self.pool is not None:
                payload = self._pool_execute("QUERY", source, conn)
                self._record_query_metrics(payload)
            else:
                payload = self._local_query(source, conn)
        except BudgetExceeded as exc:
            if self.breaker is not None and key is not None:
                self.breaker.record_blowout(key)
            if exc.reason == "deadline":
                self.session.metrics.record_timeout()
                reply = _error_envelope("QUERY", "Timeout", str(exc))
            else:
                self.session.metrics.record_error()
                reply = _error_envelope("QUERY", "BudgetExceeded", str(exc))
            reply["budget"] = exc.as_dict()
            reply["retry_after"] = self.retry_after
            return reply
        if self.breaker is not None and key is not None:
            self.breaker.record_success(key)
        return {
            "ok": True,
            "verb": "QUERY",
            "query": source,
            "strategy": payload["strategy"],
            "answers": payload["answers"],
            "count": payload["count"],
            "plan_cached": payload["plan_cached"],
            "result_cached": payload["result_cached"],
            "elapsed_ms": payload["elapsed"] * 1e3,
        }

    def _local_query(
        self, source: str, conn: Optional[_Connection]
    ) -> Dict[str, Any]:
        budget = self._local_budget(conn)
        try:
            result = self.session.execute(source, self.max_depth, budget)
        except BudgetExceeded as exc:
            self._translate_local_budget(exc, conn)
            raise
        finally:
            self._clear_budget(conn)
        return {
            "strategy": result.strategy,
            "answers": [[str(v) for v in row] for row in result.rows],
            "count": len(result.rows),
            "plan_cached": result.plan_cached,
            "result_cached": result.result_cached,
            "elapsed": result.elapsed,
        }

    def _degraded_reply(self, source: str, key: object) -> Dict[str, object]:
        """Answer while the breaker is open — same ladder as threaded:
        stale cached rows, else a tight existence probe, else
        ``CircuitOpen`` with ``retry_after``."""
        cached = self.session.peek_cached(source)
        if cached is not None:
            plan, rows = cached
            return {
                "ok": True,
                "verb": "QUERY",
                "query": source,
                "strategy": plan.strategy,
                "answers": [[str(value) for value in row] for row in rows],
                "count": len(rows),
                "plan_cached": True,
                "result_cached": True,
                "degraded": "cached",
            }
        try:
            found = self.session.exists(
                source, budget=Budget(timeout=0.25, max_rounds=100_000)
            )
        except Exception:
            pass  # even the probe is over budget (or unparsable)
        else:
            return {
                "ok": True,
                "verb": "QUERY",
                "query": source,
                "degraded": "existence",
                "exists": found,
                "answers": [],
                "count": 0,
            }
        remaining = self.breaker.remaining(key) if self.breaker else 0.0
        reply = _error_envelope(
            "QUERY", "CircuitOpen",
            "circuit open for this query shape after repeated budget "
            f"blowouts; retry in {remaining:.2f}s",
        )
        reply["retry_after"] = remaining
        return reply

    # -- PLAN / EXPLAIN / TRACE / PROFILE -------------------------------
    def _do_plan(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope("PLAN", "ProtocolError", "PLAN needs a query")
        source = self._strip(argument)
        if self.pool is not None:
            payload = self._pool_execute("PLAN", source, conn)
            self.session.metrics.record_plan(payload["cached"])
            self.session.metrics.record_verb("PLAN", payload["elapsed"])
            return {
                "ok": True,
                "verb": "PLAN",
                "strategy": payload["strategy"],
                "recursion_class": payload["recursion_class"],
                "plan": payload["plan"],
                "cached": payload["cached"],
            }
        plan, cached = self.session.plan(source)
        return {
            "ok": True,
            "verb": "PLAN",
            "strategy": plan.strategy,
            "recursion_class": plan.recursion_class,
            "plan": plan.explain(),
            "cached": cached,
        }

    def _do_explain(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "EXPLAIN", "ProtocolError", "EXPLAIN needs a query"
            )
        source = self._strip(argument)
        if self.pool is not None:
            payload = self._pool_execute("EXPLAIN", source, conn)
            report = payload["report"]
            elapsed = float(report.get("elapsed_ms") or 0.0) / 1e3
            counters = report.get("counters")
            self.session.metrics.record_query(
                report.get("strategy", "unknown"),
                elapsed,
                plan_cached=bool(report.get("plan_cached")),
                result_cached=False,
                counters=Counters(**counters) if counters else None,
            )
            self.session.metrics.record_verb("QUERY", elapsed)
            self.session.remember_trace(report)
            return {"ok": True, "verb": "EXPLAIN", "trace": report}
        budget = self._local_budget(conn)
        try:
            report = self.session.explain(source, self.max_depth, budget)
        except BudgetExceeded as exc:
            self._translate_local_budget(exc, conn)
            raise
        finally:
            self._clear_budget(conn)
        return {"ok": True, "verb": "EXPLAIN", "trace": report}

    def _do_trace(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if argument:
            reply = self._do_explain(argument, conn)
            reply["verb"] = "TRACE"
            return reply
        report = self.session.last_trace
        if report is None:
            return _error_envelope(
                "TRACE", "NoTrace",
                "no traced query yet; use EXPLAIN <query> or TRACE <query>",
            )
        return {"ok": True, "verb": "TRACE", "trace": report}

    def _do_profile(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "PROFILE", "ProtocolError", "PROFILE needs a query"
            )
        source = self._strip(argument)
        # Span profiling carries process-local span objects; it always
        # runs in-process (still off-loop, on a dispatch thread).
        budget = self._local_budget(conn)
        try:
            report = self.session.profile(source, self.max_depth, budget=budget)
        except BudgetExceeded as exc:
            self._translate_local_budget(exc, conn)
            raise
        finally:
            self._clear_budget(conn)
        return {"ok": True, "verb": "PROFILE", "profile": report}

    # -- mutation & observability verbs ---------------------------------
    def _do_fact(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope("FACT", "ProtocolError", "FACT needs a clause")
        clause = argument if argument.endswith(".") else argument + "."
        rule = parse_rule(clause)
        database = self.session.database
        before = database.version
        self.session.add_rule(rule)  # serializes with in-flight queries
        return {
            "ok": True,
            "verb": "FACT",
            "clause": str(rule),
            "kind": "fact" if rule.is_fact() else "rule",
            "added": database.version != before,
            "edb_version": database.edb_version,
            "idb_version": database.idb_version,
        }

    def _do_retract(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "RETRACT", "ProtocolError", "RETRACT needs a ground fact"
            )
        clause = argument if argument.endswith(".") else argument + "."
        rule = parse_rule(clause)
        if not rule.is_fact():
            return _error_envelope(
                "RETRACT", "ProtocolError",
                "RETRACT takes a ground fact; rules cannot be retracted",
            )
        database = self.session.database
        removed = self.session.retract_fact(rule.head.name, rule.head.args)
        return {
            "ok": True,
            "verb": "RETRACT",
            "clause": str(rule),
            "removed": removed,
            "edb_version": database.edb_version,
            "idb_version": database.idb_version,
        }

    def _parse_predicate(self, argument: str) -> Predicate:
        argument = self._strip(argument)
        if "/" in argument:
            name, _, arity_text = argument.partition("/")
            return Predicate(name.strip(), int(arity_text.strip()))
        rule = parse_rule(
            argument if argument.endswith(".") else argument + "."
        )
        return rule.head.predicate

    def _do_subscribe(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "SUBSCRIBE", "ProtocolError",
                "SUBSCRIBE needs a predicate (name/arity or a literal)",
            )
        if conn is None:
            return _error_envelope(
                "SUBSCRIBE", "ProtocolError",
                "SUBSCRIBE needs a live connection to push deltas to",
            )
        predicate = self._parse_predicate(argument)
        problem = self.session.subscribable(predicate)
        if problem is not None:
            return _error_envelope("SUBSCRIBE", "Unsubscribable", problem)
        # No settimeout dance here: the idle sweep skips subscribed
        # connections, and push liveness is policed by backlog growth.
        sub = self.subscriptions.add(conn, predicate)
        return {
            "ok": True,
            "verb": "SUBSCRIBE",
            "subscription": sub.id,
            "predicate": str(predicate),
        }

    def _do_unsubscribe(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        removed: List[int] = []
        if argument:
            sub_id = int(argument)
            if self.subscriptions.remove(sub_id, connection=conn):
                removed.append(sub_id)
        elif conn is not None:
            for sub_id in self.subscriptions.ids_for(conn):
                if self.subscriptions.remove(sub_id, connection=conn):
                    removed.append(sub_id)
        return {"ok": True, "verb": "UNSUBSCRIBE", "removed": removed}

    def _do_stats(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        return {"ok": True, "verb": "STATS", "stats": self.session.stats()}

    def _do_metrics(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        return {
            "ok": True,
            "verb": "METRICS",
            "content_type": "text/plain; version=0.0.4",
            "body": self.session.metrics_text(),
        }

    def _do_slowlog(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if argument.upper() == "CLEAR":
            dropped = self.session.clear_slowlog()
            return {"ok": True, "verb": "SLOWLOG", "cleared": dropped}
        return {
            "ok": True,
            "verb": "SLOWLOG",
            "threshold_ms": self.session.slow_query_ms,
            "entries": self.session.slowlog(),
        }

    def _do_reqlog(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        if argument.upper() == "CLEAR":
            dropped = self.session.lifecycle.clear()
            return {"ok": True, "verb": "REQLOG", "cleared": dropped}
        limit = None
        if argument:
            try:
                limit = int(argument)
            except ValueError:
                return _error_envelope(
                    "REQLOG", "ProtocolError",
                    "REQLOG takes an optional integer limit, or CLEAR",
                )
        return {
            "ok": True,
            "verb": "REQLOG",
            "size": self.session.lifecycle.size,
            "records": self.session.reqlog(limit),
        }

    def _do_health(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        return {"ok": True, "verb": "HEALTH", "health": self.session.health()}

    def _do_record(
        self, argument: str, conn: Optional[_Connection] = None
    ) -> Dict[str, object]:
        return _do_record_verb(self.session, argument)

    # ------------------------------------------------------------------
    # Delta push channel
    # ------------------------------------------------------------------
    def _on_mutation(self, batch: MutationBatch) -> None:
        """Fan one committed batch out as DELTA lines via the outboxes.

        Runs on the mutating thread; queueing is non-blocking, so a
        slow subscriber can never stall the mutator.  A subscriber
        whose outbox would overflow ``push_backlog`` is dropped and
        counted in ``repro_push_dropped_total``.
        """
        if not self.subscriptions.count():
            return
        deltas: Dict[Predicate, Tuple[list, list]] = {}
        for predicate, delta in batch.deltas.items():
            deltas[predicate] = (list(delta.added), list(delta.removed))
        views = self.session.views
        if views is not None:
            report = views.last_report
            if report is not None and report.batch is batch:
                for predicate, (adds, dels) in report.derived.items():
                    deltas[predicate] = (list(adds), list(dels))
        for predicate, (adds, dels) in deltas.items():
            if not adds and not dels:
                continue
            subs = self.subscriptions.for_predicate(predicate)
            if not subs:
                continue
            envelope = {
                "ok": True,
                "verb": "DELTA",
                "predicate": str(predicate),
                "adds": [[str(value) for value in row] for row in adds],
                "dels": [[str(value) for value in row] for row in dels],
                "edb_version": batch.edb_version,
            }
            for sub in subs:
                payload = dict(envelope)
                payload["subscription"] = sub.id
                wire = json.dumps(payload).encode("utf-8") + b"\n"
                status = self._send_bytes(sub.connection, wire, push=True)
                if status is None:
                    # Stalled subscriber: backlog overflow.
                    if self.subscriptions.remove(sub.id) is not None:
                        self.session.metrics.record_push_dropped()
                        self.session.metrics.record_disconnect()
                        log_event(
                            _log, logging.INFO, "push_drop",
                            subscription=sub.id,
                            predicate=str(predicate),
                        )
                        self._request_close(sub.connection)


def serve_async(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 8473,
    timeout: Optional[float] = None,
    max_depth: Optional[int] = None,
    slow_query_ms: Optional[float] = None,
    slowlog_size: int = 8,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    max_pending: Optional[int] = 64,
    idle_timeout: Optional[float] = None,
    breaker_threshold: Optional[int] = 3,
    breaker_cooldown: float = 5.0,
    push_backlog: int = 1_048_576,
    ivm: bool = False,
    reqlog_size: int = 256,
) -> AsyncQueryServer:
    """Convenience: session + event-loop server, already listening."""
    return AsyncQueryServer(
        QuerySession(
            database, slow_query_ms=slow_query_ms, slowlog_size=slowlog_size,
            ivm=ivm, reqlog_size=reqlog_size,
        ),
        host=host, port=port,
        timeout=timeout, max_depth=max_depth,
        workers=workers,
        budget=budget, max_pending=max_pending,
        idle_timeout=idle_timeout,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        push_backlog=push_backlog,
    )

"""A multiprocessing pool of evaluator workers over forked snapshots.

The GIL caps the threaded server at one core of fixpoint evaluation no
matter how many handler threads it runs.  This module moves the heavy
verbs (QUERY / PLAN / EXPLAIN) into separate *processes*: each worker
is forked from the serving process and inherits the
:class:`~repro.engine.database.Database` as a copy-on-write snapshot,
so concurrent evaluations really run on separate cores with zero
serialization of the fact base.

Design points, in the order they matter:

**Snapshot freshness.**  A forked worker sees the database as of its
fork.  The pool remembers the per-relation version counters (plus the
IDB version) it forked at; before every dispatch it compares them to
the live database and, on drift, forks a *new generation* of workers.
Old workers that are mid-request finish their request on the old
snapshot — exactly the answer a request admitted before the mutation
would have produced under the threaded server's session lock — and are
retired when they reply instead of rejoining the pool.  Forks always
happen while holding the parent session's lock, so a snapshot can
never capture a mutation in flight.

**Result parity.**  A worker runs a plain
:class:`~repro.service.session.QuerySession` over the inherited
database and executes exactly the code path the threaded server runs
in-process.  Answers are rendered to strings in the worker and cross
the pipe as JSON-safe payloads; counters cross as dicts and are
rebuilt with ``Counters(**d)``; a blown budget crosses as its
structured fields and is re-raised as an equivalent
:class:`~repro.resilience.BudgetExceeded`.  The parity tests pin all
three bit-identical to in-process evaluation.

**Cooperative cancellation.**  Each worker shares two lock-free
``RawValue`` cells with the parent: a *cancel sequence* and a *cancel
code*.  To cancel request ``seq`` the parent stores the code then the
sequence; the worker's per-request :class:`_RemoteBudget` checks the
cell on its sampled (clocked) checkpoints and trips ``cancelled``
exactly like an in-process :meth:`Budget.cancel`.  A worker that keeps
ignoring the flag past ``kill_grace`` seconds is killed and respawned
(``repro_worker_restarts_total``).

**Affinity.**  Workers keep their own plan/result caches, which only
pay off if a repeated query lands on the same worker.  Dispatch hashes
the query text and prefers that worker when it is free, falling back
to any free worker — deterministic cache reuse without queueing behind
a busy worker.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Dict, List, Optional

from ..engine.database import Database
from ..observe import current_id, get_logger, log_event, mark_stage
from ..resilience import Budget, BudgetExceeded
from .session import QuerySession

_log = get_logger("workers")

__all__ = [
    "WorkerPool",
    "WorkerDied",
    "ClientGone",
    "RemoteEvaluationError",
    "fork_available",
]

#: How often a blocked dispatch re-checks deadline / peer liveness.
_POLL_INTERVAL = 0.05

#: Cancel codes stored in the shared cell (mapped back to the reason
#: strings an in-process ``Budget.cancel`` would have carried).
_CANCEL_TIMEOUT = 1
_CANCEL_DISCONNECT = 2

_CANCEL_REASONS = {
    _CANCEL_TIMEOUT: "request timeout",
    _CANCEL_DISCONNECT: "client disconnected",
}


def fork_available() -> bool:
    """Can this platform fork copy-on-write evaluator workers?"""
    return "fork" in multiprocessing.get_all_start_methods()


class RemoteEvaluationError(RuntimeError):
    """An exception raised inside an evaluator worker.

    Carries the original exception's type name and message so the
    dispatcher can build the same error envelope the threaded server
    would have built for the in-process raise.
    """

    def __init__(self, exc_type: str, message: str):
        super().__init__(message)
        self.exc_type = exc_type


class WorkerDied(RuntimeError):
    """An evaluator worker died while serving a request."""


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------
class _RemoteBudget(Budget):
    """A budget that also observes the parent's shared cancel cell.

    The cell is polled on the *clocked* checkpoints only — once per
    fixpoint round and one per :data:`~repro.resilience.budget._CLOCK_SAMPLE`
    ticks — so the hot per-substitution path pays nothing beyond the
    in-process budget's own branch.  A budget with no limits set still
    polls, which is what makes every worker request cancellable.
    """

    __slots__ = ("_seq", "_cancel_seq", "_cancel_code")

    def __init__(self, seq, cancel_seq, cancel_code, limits=None):
        self._seq = seq
        self._cancel_seq = cancel_seq
        self._cancel_code = cancel_code
        super().__init__(**(limits or {}))

    def _check_clocked(self, counters) -> None:
        if not self.cancelled and self._cancel_seq.value == self._seq:
            reason = _CANCEL_REASONS.get(
                self._cancel_code.value, "cancelled by server"
            )
            self.cancel(reason)
            self._trip("cancelled", None, None, counters)
        super()._check_clocked(counters)


def _render_rows(rows) -> List[List[str]]:
    return [[str(value) for value in row] for row in rows]


def _serve_one(
    session: QuerySession, verb: str, payload: Dict[str, Any], budget: Budget
) -> Dict[str, Any]:
    """One request, evaluated exactly like the in-process handlers."""
    source = payload["source"]
    max_depth = payload.get("max_depth")
    if verb == "QUERY":
        slow_before = session.metrics.slow_queries
        result = session.execute(source, max_depth, budget)
        reply = {
            "strategy": result.strategy,
            "answers": _render_rows(result.rows),
            "count": len(result.rows),
            "plan_cached": result.plan_cached,
            "result_cached": result.result_cached,
            "elapsed": result.elapsed,
            "counters": (
                result.counters.as_dict()
                if result.counters is not None
                else None
            ),
        }
        # Slow-query forensics happen *here*, in the forked evaluator,
        # whose slowlog dies with the worker.  Ship any entries this
        # request produced back as an envelope sidecar; the dispatcher
        # pops it before building the client reply and folds it into
        # the parent session's ring (`adopt_slowlog`), so SLOWLOG /
        # PROFILE cover pooled queries exactly like in-process ones.
        added = session.metrics.slow_queries - slow_before
        if added > 0:
            entries = list(session._slowlog)[-added:]
            reply["slowlog"] = entries
        return reply
    if verb == "PLAN":
        start = time.perf_counter()
        plan, cached = session.plan(source)
        return {
            "strategy": plan.strategy,
            "recursion_class": plan.recursion_class,
            "plan": plan.explain(),
            "cached": cached,
            "elapsed": time.perf_counter() - start,
        }
    if verb == "EXPLAIN":
        start = time.perf_counter()
        report = session.explain(source, max_depth, budget)
        return {"report": report, "elapsed": time.perf_counter() - start}
    raise ValueError(f"worker cannot serve verb {verb!r}")


def _worker_main(
    database: Database,
    max_depth,
    pipe,
    cancel_seq,
    cancel_code,
    slow_query_ms=None,
    slowlog_size: int = 8,
):
    """Child process loop: recv request, evaluate, send reply.

    The session is built *here*, over the forked database snapshot, so
    the worker owns fresh plan/result caches and never shares mutable
    evaluator state with the parent.  It inherits the parent's
    slow-query threshold so pooled queries are profiled under the same
    policy as in-process ones; the resulting entries cross back as the
    reply sidecar (see :func:`_serve_one`).  ``reqlog_size=0``: the
    parent records the lifecycle, a per-worker ring would be dead
    weight.
    """
    session = QuerySession(
        database,
        max_depth=max_depth,
        slow_query_ms=slow_query_ms,
        slowlog_size=slowlog_size,
        reqlog_size=0,
    )
    session.slowlog_origin = "worker"
    while True:
        try:
            message = pipe.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        seq, verb, payload = message
        budget = _RemoteBudget(
            seq, cancel_seq, cancel_code, payload.get("limits")
        )
        # Correlation: the dispatcher stamped the lifecycle request id
        # on the payload; carrying it on the budget lets the worker's
        # slowlog entries join the parent's REQLOG and chrome trace.
        budget.request_id = payload.get("request_id")
        try:
            reply = ("ok", seq, _serve_one(session, verb, payload, budget))
        except BudgetExceeded as exc:
            reply = (
                "budget",
                seq,
                {
                    "message": str(exc),
                    "reason": exc.reason,
                    "limit": exc.limit,
                    "observed": exc.observed,
                    "counters": exc.counters,
                    "elapsed": exc.elapsed,
                },
            )
        except Exception as exc:  # envelope on the parent side
            reply = ("err", seq, {"type": type(exc).__name__, "message": str(exc)})
        try:
            pipe.send(reply)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Worker:
    __slots__ = (
        "proc", "pipe", "cancel_seq", "cancel_code",
        "busy", "owned", "generation", "seq", "kill_at",
    )

    def __init__(self, proc, pipe, cancel_seq, cancel_code, generation):
        self.proc = proc
        self.pipe = pipe
        self.cancel_seq = cancel_seq
        self.cancel_code = cancel_code
        self.busy = False
        #: A dispatch thread is attached and owns the pipe; the reaper
        #: must not touch it until the dispatcher detaches.
        self.owned = False
        self.generation = generation
        self.seq = 0
        #: Deadline for a cancelled request's reply, after which the
        #: worker is deemed unresponsive and killed.  None = no kill
        #: pending (e.g. an old-generation worker finishing cleanly).
        self.kill_at: Optional[float] = None

    def cancel(self, code: int) -> None:
        # Code first, then seq: the worker reads seq as the trigger.
        self.cancel_code.value = code
        self.cancel_seq.value = self.seq

    def terminate(self) -> None:
        try:
            self.pipe.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=0.2)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=1.0)
        self.pipe.close()


class WorkerPool:
    """Forked evaluator processes serving QUERY / PLAN / EXPLAIN.

    ``session`` is the parent serving session whose database the
    workers snapshot (and whose lock serializes forks against
    mutations).  ``size`` workers are kept per generation;
    ``kill_grace`` is how long a cancelled worker gets to reply before
    being killed and respawned.
    """

    def __init__(
        self,
        session: QuerySession,
        size: int,
        kill_grace: float = 1.0,
    ):
        if size < 1:
            raise ValueError("worker pool size must be >= 1")
        if not fork_available():
            raise RuntimeError(
                "worker pool needs the fork start method "
                "(unavailable on this platform)"
            )
        self.session = session
        self.size = size
        self.kill_grace = kill_grace
        self._ctx = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._seq = itertools.count(1)
        self._workers: List[_Worker] = []
        self._retired: List[_Worker] = []
        self._generation = 0
        self._snapshot_key = None
        self._closed = False
        #: Gauges for /metrics (repro_worker_* families).
        self.restarts = 0
        self.refreshes = 0
        self.dispatches = 0
        self._queue_depth = 0
        #: Monotonic stamps of recent respawns, for health degradation
        #: (a pool stuck in kill-and-respawn loops must not report ok).
        self._restart_times: deque = deque(maxlen=32)
        with self._lock:
            self._refresh_locked(force=True)
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="repro-worker-reaper", daemon=True
        )
        self._reaper.start()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers = self._workers + self._retired
            self._workers = []
            self._retired = []
        for worker in workers:
            worker.terminate()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot(self) -> Dict[str, object]:
        """The /metrics gauge payload (``stats["workers"]``).

        Beyond the dispatch counters, this carries the pool-liveness
        fields HEALTH degrades on: ``alive`` (workers whose process is
        actually running), ``recent_restarts`` (respawns in the last
        minute) and ``last_restart_age_s``.
        """
        now = time.monotonic()
        with self._lock:
            workers = list(self._workers)
            restart_times = list(self._restart_times)
            snap: Dict[str, object] = {
                "workers": len(workers),
                "size": self.size,
                "queue_depth": self._queue_depth,
                "restarts": self.restarts,
                "refreshes": self.refreshes,
                "dispatches": self.dispatches,
            }
        snap["alive"] = sum(1 for w in workers if w.proc.is_alive())
        snap["recent_restarts"] = sum(
            1 for stamp in restart_times if now - stamp < 60.0
        )
        snap["last_restart_age_s"] = (
            now - restart_times[-1] if restart_times else None
        )
        return snap

    # -- forking --------------------------------------------------------
    def _current_key(self):
        # Under the session lock no mutation is mid-flight, so the
        # version counters are a consistent snapshot stamp.
        with self.session._lock:
            database = self.session.database
            return (
                dict(database.relation_versions),
                database.edb_version,
                database.idb_version,
            )

    def _spawn_locked(self, generation: int) -> _Worker:
        pipe, child_pipe = self._ctx.Pipe(duplex=True)
        cancel_seq = self._ctx.RawValue("q", -1)
        cancel_code = self._ctx.RawValue("i", 0)
        # Fork under the session lock: a mutation cannot be mid-flight,
        # so the child's copy-on-write database is a committed snapshot.
        with self.session._lock:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    self.session.database,
                    self.session.planner.max_depth,
                    child_pipe,
                    cancel_seq,
                    cancel_code,
                    self.session.slow_query_ms,
                    self.session._slowlog.maxlen,
                ),
                name=f"repro-worker-g{generation}",
                daemon=True,
            )
            proc.start()
        child_pipe.close()
        return _Worker(proc, pipe, cancel_seq, cancel_code, generation)

    def _refresh_locked(self, force: bool = False) -> None:
        """Fork a fresh generation when the database drifted."""
        key = self._current_key()
        if not force and key == self._snapshot_key:
            return
        self._generation += 1
        if not force:
            self.refreshes += 1
            log_event(
                _log, logging.DEBUG, "pool_refresh",
                generation=self._generation,
            )
        for worker in self._workers:
            if worker.busy:
                # Mid-request on the old snapshot: let it finish (its
                # request predates the mutation); retire on reply.
                self._retired.append(worker)
            else:
                worker.terminate()
        self._workers = [
            self._spawn_locked(self._generation) for _ in range(self.size)
        ]
        self._snapshot_key = key

    # -- dispatch -------------------------------------------------------
    def _acquire(self, affinity: int) -> _Worker:
        with self._free:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._queue_depth += 1
            try:
                while True:
                    self._refresh_locked()
                    worker = None
                    if self._workers:
                        preferred = self._workers[affinity % len(self._workers)]
                        if not preferred.busy:
                            worker = preferred
                        else:
                            free = [w for w in self._workers if not w.busy]
                            worker = free[0] if free else None
                    if worker is not None:
                        worker.busy = True
                        worker.owned = True
                        worker.kill_at = None
                        return worker
                    self._free.wait(timeout=_POLL_INTERVAL)
                    if self._closed:
                        raise RuntimeError("worker pool is closed")
            finally:
                self._queue_depth -= 1

    def _release(self, worker: _Worker) -> None:
        """Return a worker after a clean reply."""
        with self._free:
            worker.owned = False
            worker.busy = False
            if worker.generation != self._generation:
                # Finished on a stale snapshot: do not rejoin the pool.
                try:
                    self._retired.remove(worker)
                except ValueError:
                    pass
                self._free.notify_all()
                retire = worker
            else:
                self._free.notify_all()
                return
        retire.terminate()

    def _abandon(self, worker: _Worker, code: int) -> None:
        """Detach from a worker whose request was cancelled; the reaper
        waits out the kill grace and reuses or kills it."""
        worker.cancel(code)
        with self._free:
            worker.owned = False
            worker.kill_at = time.monotonic() + self.kill_grace
            if worker not in self._retired:
                self._retired.append(worker)
            try:
                self._workers.remove(worker)
            except ValueError:
                pass
            if (
                not self._closed
                and worker.generation == self._generation
                and len(self._workers) < self.size
            ):
                self._workers.append(self._spawn_locked(self._generation))
            self._free.notify_all()

    def _replace_dead(self, worker: _Worker) -> None:
        with self._free:
            worker.owned = False
            try:
                self._workers.remove(worker)
            except ValueError:
                pass
            try:
                self._retired.remove(worker)
            except ValueError:
                pass
            self.restarts += 1
            self._restart_times.append(time.monotonic())
            log_event(
                _log, logging.INFO, "worker_respawn",
                pid=worker.proc.pid, generation=worker.generation,
                restarts=self.restarts,
            )
            if (
                not self._closed
                and worker.generation == self._generation
                and len(self._workers) < self.size
            ):
                self._workers.append(self._spawn_locked(self._generation))
            self._free.notify_all()
        worker.terminate()

    def execute(
        self,
        verb: str,
        source: str,
        max_depth: Optional[int] = None,
        limits: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        peer_gone: Optional[Callable[[], bool]] = None,
    ) -> Dict[str, Any]:
        """Run one heavy verb on a worker; blocks the calling thread.

        Mirrors the threaded server's ``_await`` contract: raises
        :class:`concurrent.futures.TimeoutError` when ``timeout``
        passes (the worker is cancelled remotely, then killed if it
        ignores the flag), lets ``peer_gone()`` abort the request the
        same way, re-raises a worker-side
        :class:`~repro.resilience.BudgetExceeded` with its structured
        fields intact, and wraps any other worker-side exception in
        :class:`RemoteEvaluationError`.
        """
        seq = next(self._seq)
        payload: Dict[str, Any] = {"source": source}
        if max_depth is not None:
            payload["max_depth"] = max_depth
        if limits:
            payload["limits"] = {
                key: value for key, value in limits.items() if value is not None
            }
        request_id = current_id()
        if request_id is not None:
            payload["request_id"] = request_id
        wait_start = time.perf_counter()
        worker = self._acquire(hash(source))
        self.session.metrics.record_worker_wait(
            time.perf_counter() - wait_start
        )
        mark_stage("worker")
        worker.seq = seq
        try:
            worker.pipe.send((seq, verb, payload))
        except (BrokenPipeError, OSError):
            self._replace_dead(worker)
            raise WorkerDied("evaluator worker died before the request")
        with self._lock:
            self.dispatches += 1
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if worker.pipe.poll(_POLL_INTERVAL):
                    kind, reply_seq, data = worker.pipe.recv()
                    if reply_seq != seq:
                        continue  # stale reply from a cancelled request
                    self._release(worker)
                    return self._unwrap(kind, data)
            except (EOFError, OSError):
                self._replace_dead(worker)
                raise WorkerDied("evaluator worker died mid-request")
            if deadline is not None and time.monotonic() >= deadline:
                self._abandon(worker, _CANCEL_TIMEOUT)
                raise FutureTimeoutError()
            if peer_gone is not None and peer_gone():
                self._abandon(worker, _CANCEL_DISCONNECT)
                raise ClientGone("client disconnected mid-request")

    @staticmethod
    def _unwrap(kind: str, data: Dict[str, Any]) -> Dict[str, Any]:
        if kind == "ok":
            return data
        if kind == "budget":
            raise BudgetExceeded(
                data["message"],
                reason=data["reason"],
                limit=data["limit"],
                observed=data["observed"],
                counters=data["counters"],
                elapsed=data["elapsed"],
            )
        raise RemoteEvaluationError(data["type"], data["message"])

    # -- reaper ---------------------------------------------------------
    def _reaper_loop(self) -> None:
        """Retire cancelled/stale workers without blocking dispatchers.

        A cancelled worker that replies within the kill grace is still
        healthy: it rejoins the pool if its snapshot is current, or is
        terminated if stale.  One that stays silent past its ``kill_at``
        is hard-killed and (when current-generation) respawned —
        counted in ``repro_worker_restarts_total``.
        """
        while True:
            time.sleep(_POLL_INTERVAL)
            with self._free:
                if self._closed:
                    return
                candidates = [w for w in self._retired if not w.owned]
            now = time.monotonic()
            for worker in candidates:
                if not worker.proc.is_alive():
                    self._replace_dead(worker)
                    continue
                replied = False
                try:
                    while worker.pipe.poll(0):
                        worker.pipe.recv()  # drain the discarded reply
                        replied = True
                except (EOFError, OSError):
                    self._replace_dead(worker)
                    continue
                if replied:
                    with self._free:
                        try:
                            self._retired.remove(worker)
                        except ValueError:
                            pass
                        worker.busy = False
                        worker.kill_at = None
                        if (
                            not self._closed
                            and worker.generation == self._generation
                            and len(self._workers) < self.size
                        ):
                            self._workers.append(worker)
                            worker = None
                        self._free.notify_all()
                    if worker is not None:
                        worker.terminate()
                    continue
                if worker.kill_at is not None and now >= worker.kill_at:
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
                    self._replace_dead(worker)


class ClientGone(ConnectionError):
    """The dispatcher's ``peer_gone`` probe fired mid-request.

    Defined here (rather than importing the server's
    ``ClientDisconnected``) to keep this module importable without the
    socket front ends; the dispatchers translate it.
    """

"""A threaded TCP line-protocol server over a shared QuerySession.

Protocol: one request per line, one JSON reply envelope per line.

========  ==========================  =======================================
verb      argument                    reply payload
========  ==========================  =======================================
QUERY     a query, e.g. ``sg(ann,Y)``  ``answers`` (rows of rendered terms),
                                      ``count``, ``strategy``, cache flags
PLAN      a query                     ``plan`` (the explain text),
                                      ``strategy``, ``cached``
FACT      a clause, e.g.              ``added`` plus the new version stamp;
          ``parent(ann, bea).``       rules are accepted too and bump the
                                      IDB version instead
RETRACT   a ground fact, e.g.         ``removed`` plus the new version
          ``parent(ann, bea).``       stamp; only stored facts can be
                                      retracted, not rules
SUBSCRIBE ``name/arity`` or a         ``subscription`` (an id); from then
          literal, e.g. ``sg(X,Y)``   on every committed mutation batch
                                      that changes the predicate pushes a
                                      ``DELTA`` line (``adds``/``dels``)
                                      on this connection
UNSUBSCRIBE  an id (optional)         drops that subscription (or, with
                                      no argument, all on this
                                      connection); ``removed`` lists ids
STATS     —                           the ``ServiceMetrics`` snapshot plus
                                      cache/database state
EXPLAIN   a query                     evaluate with tracing on; the full
                                      EXPLAIN report — per-round delta
                                      sizes, observed-vs-predicted
                                      expansion ratios, split check
TRACE     a query (optional)          with an argument: alias of EXPLAIN;
                                      without: the last EXPLAIN report
METRICS   —                           ``body``: the metrics in Prometheus
                                      text exposition format
PROFILE   a query                     evaluate with span profiling on; the
                                      per-rule/per-stage wall-clock
                                      attribution report
SLOWLOG   ``CLEAR`` (optional)        retained slow-query entries (span
                                      profile attached), most recent
                                      first; ``CLEAR`` drops them
REQLOG    a limit (optional) or       the flight recorder's per-request
          ``CLEAR``                   stage timelines (read/parse/
                                      admission/eval/serialize/flush
                                      milliseconds per request), most
                                      recent first; ``CLEAR`` drops them
HEALTH    —                           liveness/pressure summary (uptime,
                                      error/timeout/slow-query counts,
                                      cache and database state)
RECORD    ``START <path>``,           workload capture control: START
          ``STOP`` or ``STATUS``      snapshots the EDB and records every
          (optional)                  completed request to a replayable
                                      JSONL archive at ``path``; STOP
                                      flushes and closes it; STATUS (or
                                      no argument) reports the recorder
========  ==========================  =======================================

Raw HTTP ``GET`` request lines on the same port are answered with a
minimal ``HTTP/1.0`` response (connection closed afterwards):
``/metrics`` carries the Prometheus text page, ``/healthz`` the HEALTH
summary as JSON, ``/slowlog`` the slow-query log and ``/reqlog`` the
flight-recorder ring as JSON — so the TCP port doubles as a
scrape/probe target for ``curl``/Prometheus without a separate HTTP
server.

Every reply is ``{"ok": true, "verb": ..., ...}`` or
``{"ok": false, "verb": ..., "error": {"type": ..., "message": ...}}`` —
parse errors, planning errors, evaluation errors and timeouts all come
back as structured envelopes; the connection (and the server) survives.

``QUERY`` requests run under a wall-clock ``timeout``, a chain-depth
budget (``max_depth``) and an optional resource ``budget`` template
(tuples/rounds/live substitutions).  The timeout is enforced by running
evaluation on a worker pool; when the wait is abandoned the in-flight
request's :class:`~repro.resilience.Budget` is *cancelled*, so the
worker observes the cancellation at its next cooperative checkpoint and
releases the session lock promptly instead of running the pathological
query to completion.  The same cancellation fires when the client
vanishes mid-request.  Clients keep the connection open for any number
of requests.

Overload and repeated blowouts degrade gracefully rather than crash:

* an :class:`~repro.resilience.AdmissionController` sheds excess
  heavy-verb requests with ``Overloaded`` envelopes carrying
  ``retry_after`` (observability verbs are never shed);
* a :class:`~repro.resilience.CircuitBreaker` keyed on the plan-cache
  key trips after consecutive budget blowouts on the same query shape
  and serves degraded answers while open — a stale cached result if one
  exists, else an existence-only probe under a tight budget, else a
  ``CircuitOpen`` envelope with ``retry_after``.

``SUBSCRIBE`` turns the connection into a push channel: a pusher thread
delivers one ``{"ok": true, "verb": "DELTA", "subscription": id,
"predicate": "name/arity", "adds": [...], "dels": [...]}`` line per
committed mutation batch that changes the subscribed predicate.  For
stored predicates the deltas come straight from the batch; for derived
predicates they come from the session's incremental view maintenance
(the session must be constructed with ``ivm=True``).  Request replies
and pushed deltas on the same connection are serialized by a
per-connection write lock so lines never interleave.  Subscribed
connections are exempt from ``idle_timeout`` and from the mid-request
disconnect probe — silence is their normal state.

The push path is bounded in both time and space: every push write must
finish within ``push_timeout`` seconds (a stalled consumer is reaped
like a dead one, so it cannot freeze DELTA delivery to healthy
subscribers), and each subscriber may have at most ``push_backlog``
bytes of undelivered DELTA payload queued — overflowing the backlog
drops the subscriber and bumps ``repro_push_dropped_total``.

For an event-loop front end that keeps thousands of idle connections
cheap and dispatches heavy verbs to a multiprocessing pool of evaluator
workers, see :mod:`repro.service.eventloop`.
"""

from __future__ import annotations

import json
import logging
import queue
import select
import socket
import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional, Tuple

from ..datalog.literals import Predicate
from ..datalog.parser import parse_rule
from ..engine.database import Database, MutationBatch
from ..observe import (
    RequestRecord,
    activate,
    current_id,
    get_logger,
    log_event,
    mark_stage,
    set_verb,
)
from ..resilience import AdmissionController, Budget, BudgetExceeded, CircuitBreaker
from .session import QuerySession

_log = get_logger("server")

__all__ = [
    "ClientDisconnected",
    "QueryServer",
    "install_signal_handlers",
    "serve",
]


def install_signal_handlers(server, signals=None) -> bool:
    """Route SIGTERM/SIGINT into the server's graceful shutdown path.

    Today only an explicit ``shutdown()`` call flushes the WAL,
    finalizes a running capture, drains the deferred stage-latency
    queue and reaps workers; a signal would skip all of it.  This
    wires the signals to ``request_shutdown()`` — which merely makes
    ``serve_forever()`` return, so the *one* teardown path (the
    caller's ``finally: server.shutdown()``) runs for signals exactly
    as it does for KeyboardInterrupt and normal exit.

    Both front ends (:class:`QueryServer` here and the event loop's
    ``AsyncQueryServer``) expose the same ``request_shutdown()``
    surface, so one installer covers both.  Returns ``False`` (and
    installs nothing) off the main thread, where CPython refuses
    signal handler registration.
    """
    import signal as signal_module

    if signals is None:
        signals = (signal_module.SIGTERM, signal_module.SIGINT)

    def _handle(signum, frame):  # noqa: ARG001 (signal handler shape)
        server.request_shutdown()

    try:
        for signum in signals:
            signal_module.signal(signum, _handle)
    except ValueError:  # not the main thread
        return False
    return True

#: Refuse absurd request lines instead of buffering them.
MAX_LINE_BYTES = 64 * 1024

#: Hard ceiling on bytes drained after an oversized request line; a
#: peer still streaming past this is hosing us and gets disconnected.
MAX_DRAIN_BYTES = 512 * 1024

#: Verbs that evaluate (or plan) a query and therefore go through
#: admission control; STATS/HEALTH/METRICS/SLOWLOG and the mutation
#: verbs (FACT/RETRACT) stay exempt so the health surfaces and the
#: write path remain responsive under load shedding.
HEAVY_VERBS = frozenset({"QUERY", "PLAN", "EXPLAIN", "TRACE", "PROFILE"})

#: How often the result-wait loop re-checks deadline and peer liveness.
_POLL_INTERVAL = 0.05


class ClientDisconnected(ConnectionError):
    """The peer vanished while its request was still being served."""


class _PushTimeout(OSError):
    """A push write stayed blocked past the send timeout."""


#: Per-call non-blocking send flag (0 where unsupported, in which case
#: the bounded send degrades to trusting select's writability report).
_MSG_DONTWAIT = getattr(socket, "MSG_DONTWAIT", 0)


def _send_all_bounded(
    sock: socket.socket, payload: bytes, timeout: Optional[float]
) -> None:
    """``sendall`` with a wall-clock bound, without touching the
    socket's own timeout state (the handler thread may be blocked in a
    read on the same socket, and ``settimeout`` would yank its rug).

    Waits for write readiness and sends in chunks; a send that cannot
    finish within ``timeout`` raises :class:`_PushTimeout` (an
    ``OSError``, so callers treat a stall exactly like a dead socket).
    """
    if timeout is None:
        sock.sendall(payload)
        return
    view = memoryview(payload)
    deadline = time.monotonic() + timeout
    while view:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise _PushTimeout(f"push write blocked over {timeout}s")
        _, writable, _ = select.select([], [sock], [], remaining)
        if not writable:
            continue
        # MSG_DONTWAIT makes this single call non-blocking without
        # flipping the fd's blocking mode: a blocking send() of a
        # buffer larger than the free kernel space would stall until
        # *all* of it fits, defeating the deadline above.
        try:
            sent = sock.send(view, _MSG_DONTWAIT)
        except (BlockingIOError, InterruptedError):
            continue  # spurious writability; re-wait
        view = view[sent:]


def _error_envelope(verb: str, exc_type: str, message: str) -> Dict[str, object]:
    return {
        "ok": False,
        "verb": verb,
        "error": {"type": exc_type, "message": message},
    }


def http_response(session: QuerySession, raw: bytes) -> bytes:
    """One-shot HTTP/1.0 response for a ``GET ...`` request line on the
    line-protocol port: /metrics (Prometheus scrape), /healthz and
    /slowlog probes.  Shared by the threaded handler and the event-loop
    front end."""
    try:
        path = raw.split()[1].decode("ascii", errors="replace")
    except IndexError:
        path = "/"
    path = path.split("?", 1)[0]
    if path == "/metrics":
        status = b"200 OK"
        content_type = b"text/plain; version=0.0.4; charset=utf-8"
        body = session.metrics_text().encode("utf-8")
    elif path == "/healthz":
        status = b"200 OK"
        content_type = b"application/json; charset=utf-8"
        body = json.dumps(session.health()).encode("utf-8")
    elif path == "/slowlog":
        status = b"200 OK"
        content_type = b"application/json; charset=utf-8"
        body = json.dumps(session.slowlog()).encode("utf-8")
    elif path == "/reqlog":
        status = b"200 OK"
        content_type = b"application/json; charset=utf-8"
        body = json.dumps(session.reqlog()).encode("utf-8")
    else:
        status = b"404 Not Found"
        content_type = b"text/plain; charset=utf-8"
        body = (
            f"no route {path}; try /metrics, /healthz, /slowlog or /reqlog\n"
        ).encode("utf-8")
    return (
        b"HTTP/1.0 " + status + b"\r\n"
        b"Content-Type: " + content_type + b"\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        b"Connection: close\r\n\r\n" + body
    )


class _Subscription:
    """One SUBSCRIBE registration: a predicate feeding one connection."""

    __slots__ = ("id", "predicate", "connection", "lock", "pending_bytes")

    def __init__(
        self,
        sub_id: int,
        predicate: Predicate,
        connection,
        lock: threading.Lock,
    ):
        self.id = sub_id
        self.predicate = predicate
        self.connection = connection
        self.lock = lock
        #: Bytes of DELTA payload enqueued for this subscriber but not
        #: yet written to its socket — the per-subscriber backlog that
        #: ``push_backlog`` caps.
        self.pending_bytes = 0


class _Subscriptions:
    """Thread-safe registry of live subscriptions.

    Also owns the per-connection write locks that serialize request
    replies against pushed DELTA lines on the same socket.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._next_id = 1
        self._by_id: Dict[int, _Subscription] = {}
        self._by_conn: Dict[socket.socket, List[int]] = {}
        self._conn_locks: Dict[socket.socket, threading.Lock] = {}

    def lock_for(self, connection: socket.socket) -> threading.Lock:
        with self._lock:
            lock = self._conn_locks.get(connection)
            if lock is None:
                lock = threading.Lock()
                self._conn_locks[connection] = lock
            return lock

    def add(
        self, connection: socket.socket, predicate: Predicate
    ) -> _Subscription:
        write_lock = self.lock_for(connection)
        with self._lock:
            sub = _Subscription(
                self._next_id, predicate, connection, write_lock
            )
            self._next_id += 1
            self._by_id[sub.id] = sub
            self._by_conn.setdefault(connection, []).append(sub.id)
            return sub

    def remove(
        self, sub_id: int, connection: Optional[socket.socket] = None
    ) -> Optional[_Subscription]:
        """Drop ``sub_id``; with ``connection`` given, only if it owns it."""
        with self._lock:
            sub = self._by_id.get(sub_id)
            if sub is None:
                return None
            if connection is not None and sub.connection is not connection:
                return None
            del self._by_id[sub_id]
            ids = self._by_conn.get(sub.connection)
            if ids is not None:
                try:
                    ids.remove(sub_id)
                except ValueError:
                    pass
                if not ids:
                    del self._by_conn[sub.connection]
            return sub

    def drop_connection(self, connection: socket.socket) -> List[int]:
        """The connection closed: forget its subscriptions and lock."""
        with self._lock:
            ids = self._by_conn.pop(connection, [])
            for sub_id in ids:
                self._by_id.pop(sub_id, None)
            self._conn_locks.pop(connection, None)
            return ids

    def ids_for(self, connection: socket.socket) -> List[int]:
        with self._lock:
            return list(self._by_conn.get(connection, ()))

    def is_live(self, sub: _Subscription) -> bool:
        """Is this exact registration still current?"""
        with self._lock:
            return self._by_id.get(sub.id) is sub

    def try_reserve(self, sub: _Subscription, nbytes: int, cap: int):
        """Account ``nbytes`` of pending push payload for ``sub``.

        Returns ``True`` when reserved, ``False`` when the subscription
        is already gone, and ``None`` when the reservation would push
        the subscriber past ``cap`` — the overflow signal that makes
        the caller drop the subscriber instead of buffering unbounded.
        """
        with self._lock:
            if self._by_id.get(sub.id) is not sub:
                return False
            if sub.pending_bytes + nbytes > cap:
                return None
            sub.pending_bytes += nbytes
            return True

    def release(self, sub: _Subscription, nbytes: int) -> None:
        """The pusher wrote (or abandoned) ``nbytes`` of backlog."""
        with self._lock:
            sub.pending_bytes = max(0, sub.pending_bytes - nbytes)

    def is_subscribed(self, connection: socket.socket) -> bool:
        with self._lock:
            return connection in self._by_conn

    def for_predicate(self, predicate: Predicate) -> List[_Subscription]:
        with self._lock:
            return [
                sub
                for sub in self._by_id.values()
                if sub.predicate == predicate
            ]

    def count(self) -> int:
        with self._lock:
            return len(self._by_id)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write JSON reply lines."""

    server: "_TCPServer"

    def setup(self) -> None:
        # Per-connection idle timeout: a silent peer eventually gets its
        # handler thread back (readline raises socket.timeout → close).
        idle = self.server.query_server.idle_timeout
        if idle is not None:
            self.request.settimeout(idle)
        super().setup()

    def handle(self) -> None:
        query_server = self.server.query_server
        while True:
            try:
                raw = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not raw:
                return
            if raw.startswith(b"GET "):
                # One-shot HTTP request on the line-protocol port:
                # minimal HTTP/1.0 response, then close.  /metrics is
                # the Prometheus scrape; /healthz, /slowlog and
                # /reqlog serve the probes next to it.
                record = self._mint_record()
                if record is not None:
                    record.verb = "HTTP"
                    try:
                        record.detail = raw.split()[1].decode(
                            "ascii", errors="replace"
                        )[:200]
                    except IndexError:
                        record.detail = "/"
                    record.mark("parse")
                self._handle_http(raw, record)
                return
            close_after_reply = False
            capture_line: Optional[str] = None
            record: Optional[RequestRecord] = None
            if len(raw) > MAX_LINE_BYTES:
                # readline() returned a *partial* line; drain the rest
                # so the tail is not parsed as a second request (one
                # request line must yield exactly one reply line) — but
                # only up to MAX_DRAIN_BYTES: a peer streaming past
                # that is refused the drain and disconnected after the
                # error envelope instead of being buffered unbounded.
                drained = len(raw)
                while not raw.endswith(b"\n"):
                    raw = self.rfile.readline(MAX_LINE_BYTES + 1)
                    if not raw:
                        break
                    drained += len(raw)
                    if drained > MAX_DRAIN_BYTES:
                        close_after_reply = True
                        break
                reply = _error_envelope(
                    "?", "ProtocolError", f"request line over {MAX_LINE_BYTES} bytes"
                )
            else:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                record = self._mint_record()
                if record is not None:
                    record.detail = line[:200]
                    # Guarded at the call site: fires per request, and
                    # even a disabled log_event costs a kwargs dict.
                    if _log.isEnabledFor(logging.DEBUG):
                        log_event(
                            _log, logging.DEBUG, "dispatch",
                            request_id=record.id, line=record.detail,
                        )
                try:
                    with activate(record):
                        reply = query_server.handle_line(
                            line, connection=self.connection
                        )
                except ClientDisconnected:
                    # Budget already cancelled and disconnect recorded
                    # by the wait loop; nothing left to reply to.
                    self._finalize(record, "disconnected")
                    return
                if record is not None:
                    record.mark("eval")
                capture_line = line
            wire = json.dumps(reply).encode("utf-8") + b"\n"
            if record is not None:
                record.mark("serialize")
            if capture_line is not None:
                # After serialization so the recorder's writer thread
                # can digest the exact wire bytes without re-dumping.
                capture = query_server.session.capture
                if capture.active:
                    capture.record(capture_line, reply, record, wire)
            try:
                # The connection's write lock keeps the reply line from
                # interleaving with DELTA pushes on the same socket.
                with query_server.subscriptions.lock_for(self.connection):
                    if record is not None:
                        record.mark("outbox")
                    self.wfile.write(wire)
                    self.wfile.flush()
            except (ConnectionError, OSError):
                query_server.session.metrics.record_disconnect()
                self._finalize(record, "aborted")
                return
            if record is not None:
                record.mark("flush")
            self._finalize(record, "ok")
            if close_after_reply:
                return

    def finish(self) -> None:
        self.server.query_server.subscriptions.drop_connection(self.connection)
        super().finish()

    def _mint_record(self) -> Optional[RequestRecord]:
        """Mint a lifecycle record for the line just read.

        The blocking ``readline`` gives no frame-arrival stamp, so the
        record is anchored at readline's return: the threaded front end
        has no dispatch queue, read and queue are stamped zero-width.
        """
        session = self.server.query_server.session
        if not session.lifecycle.enabled:
            return None
        try:
            client = self._client_label
        except AttributeError:
            try:
                host, port = self.client_address[:2]
                client = f"{host}:{port}"
            except (TypeError, ValueError, IndexError):
                client = None
            self._client_label = client
        record = session.lifecycle.begin(
            client=client, start_ns=time.perf_counter_ns()
        )
        if record is not None:
            record.mark("read")
            record.mark("queue")
        return record

    def _finalize(self, record: Optional[RequestRecord], status: str) -> None:
        if record is not None:
            record.finish(status)
            session = self.server.query_server.session
            session.lifecycle.commit(record, session.metrics)

    def _handle_http(
        self, raw: bytes, record: Optional[RequestRecord] = None
    ) -> None:
        try:
            response = http_response(self.server.query_server.session, raw)
            if record is not None:
                record.mark("eval")
                record.mark("serialize")
            self.wfile.write(response)
            self.wfile.flush()
        except (ConnectionError, OSError):
            self._finalize(record, "aborted")
            return
        if record is not None:
            record.mark("flush")
        self._finalize(record, "ok")


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    query_server: "QueryServer"


class QueryServer:
    """Serve a :class:`QuerySession` over TCP.

    ``timeout`` is the per-request wall-clock budget in seconds (None
    disables it); ``max_depth`` the per-request chain-depth budget
    (None defers to the session's own).

    ``budget`` is a :class:`~repro.resilience.Budget` *template*: every
    heavy request runs under a fresh ``fork()`` of it, giving the server
    a cancellation handle even when no limits are set.  ``max_pending``
    bounds admitted heavy-verb requests (None disables admission
    control); ``verb_limits`` optionally bounds per-verb concurrency
    (default: at most ``workers`` concurrent ``QUERY``\\ s).
    ``idle_timeout`` closes connections whose peer goes silent.
    ``breaker_threshold`` consecutive budget blowouts on one plan-cache
    key trip the circuit breaker for ``breaker_cooldown`` seconds (None
    disables the breaker).
    """

    def __init__(
        self,
        session: QuerySession,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = None,
        max_depth: Optional[int] = None,
        workers: int = 8,
        budget: Optional[Budget] = None,
        max_pending: Optional[int] = 64,
        verb_limits: Optional[Dict[str, int]] = None,
        retry_after: float = 1.0,
        idle_timeout: Optional[float] = None,
        breaker_threshold: Optional[int] = 3,
        breaker_cooldown: float = 5.0,
        push_backlog: int = 1_048_576,
        push_timeout: Optional[float] = 5.0,
    ):
        self.session = session
        # Flight-recorder records minted by this front end are labelled
        # with the serving model (the session default says "async").
        session.lifecycle.origin = "threaded"
        self.timeout = timeout
        self.max_depth = max_depth
        self.budget = budget
        self.retry_after = retry_after
        self.idle_timeout = idle_timeout
        #: Per-subscriber cap on buffered DELTA bytes; a consumer whose
        #: backlog exceeds it is dropped (``repro_push_dropped_total``)
        #: instead of growing server memory without bound.
        self.push_backlog = push_backlog
        #: Wall-clock bound on any single push write; a subscriber that
        #: keeps a write blocked longer is treated as dead and reaped.
        self.push_timeout = push_timeout
        if max_pending is None:
            self.admission: Optional[AdmissionController] = None
        else:
            self.admission = AdmissionController(
                max_pending=max_pending,
                verb_limits=(
                    verb_limits if verb_limits is not None
                    else {"QUERY": workers}
                ),
                retry_after=retry_after,
            )
        if breaker_threshold is None:
            self.breaker: Optional[CircuitBreaker] = None
        else:
            self.breaker = CircuitBreaker(
                threshold=breaker_threshold, cooldown=breaker_cooldown
            )
            # STATS / the Prometheus page surface breaker state without
            # the metrics module importing the breaker.
            session.metrics.breaker_provider = self.breaker.snapshot
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.query_server = self
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._thread: Optional[threading.Thread] = None
        self.subscriptions = _Subscriptions()
        # STATS / the Prometheus page surface the live subscriber count.
        session.metrics.subscriber_provider = self.subscriptions.count
        self._push_queue: "queue.Queue" = queue.Queue()
        self._pusher = threading.Thread(
            target=self._pusher_loop, name="repro-push", daemon=True
        )
        self._pusher.start()
        # Registered after the session's own ViewManager listener (the
        # session constructor ran first), so by the time _on_mutation
        # sees a batch the maintenance report for it is already final.
        session.database.add_mutation_listener(self._on_mutation)

    @classmethod
    def for_database(cls, database: Database, **kwargs) -> "QueryServer":
        return cls(QuerySession(database), **kwargs)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._tcp.server_address[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        self._tcp.serve_forever()

    def start(self) -> "QueryServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-server", daemon=True
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to return; safe from a signal
        handler.

        ``socketserver.shutdown()`` blocks until the serve loop exits,
        and a signal handler runs *on* the thread sitting in that loop
        — calling it inline would deadlock, so it is bounced to a
        throwaway thread.  The caller's ``finally: server.shutdown()``
        then performs the one real teardown path.
        """
        threading.Thread(
            target=self._tcp.shutdown, name="repro-shutdown", daemon=True
        ).start()

    def shutdown(self) -> None:
        self.session.database.remove_mutation_listener(self._on_mutation)
        self._push_queue.put(None)
        self._tcp.shutdown()
        self._tcp.server_close()
        self._pool.shutdown(wait=False)
        self._pusher.join(timeout=5)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        # Final-snapshot hygiene: push the deferred stage-latency
        # samples into the histograms so a scrape of the metrics object
        # after shutdown sees every committed request, close any live
        # capture archive (flush + fsync) instead of leaking it, and
        # flush + fsync + checkpoint the durability store so a restart
        # recovers from a snapshot instead of a full WAL replay.
        self.session.lifecycle.drain_metrics(self.session.metrics)
        if self.session.capture.active:
            self.session.capture.stop()
        persist = getattr(self.session, "persist", None)
        if persist is not None:
            persist.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Delta push channel
    # ------------------------------------------------------------------
    def _on_mutation(self, batch: MutationBatch) -> None:
        """Database listener: fan one committed batch out as DELTA lines.

        Envelopes are built here, synchronously with the batch — the
        session's maintenance report is still the one for *this* batch
        — but the socket writes happen on the pusher thread so a slow
        subscriber never blocks the mutating caller.
        """
        if not self.subscriptions.count():
            return
        deltas: Dict[Predicate, Tuple[list, list]] = {}
        for predicate, delta in batch.deltas.items():
            deltas[predicate] = (list(delta.added), list(delta.removed))
        views = self.session.views
        if views is not None:
            report = views.last_report
            if report is not None and report.batch is batch:
                # Derived deltas override raw ones: when a predicate is
                # both stored and derived, the maintained net change is
                # the truthful one.
                for predicate, (adds, dels) in report.derived.items():
                    deltas[predicate] = (list(adds), list(dels))
        for predicate, (adds, dels) in deltas.items():
            if not adds and not dels:
                continue
            subs = self.subscriptions.for_predicate(predicate)
            if not subs:
                continue
            envelope = {
                "ok": True,
                "verb": "DELTA",
                "predicate": str(predicate),
                "adds": [[str(value) for value in row] for row in adds],
                "dels": [[str(value) for value in row] for row in dels],
                "edb_version": batch.edb_version,
            }
            for sub in subs:
                payload = dict(envelope)
                payload["subscription"] = sub.id
                wire = json.dumps(payload).encode("utf-8") + b"\n"
                reserved = self.subscriptions.try_reserve(
                    sub, len(wire), self.push_backlog
                )
                if reserved is False:
                    continue  # already reaped; skip silently
                if reserved is None:
                    # Backlog overflow: the consumer is not keeping up.
                    # Dropping the subscriber bounds server memory; the
                    # shutdown() below unblocks any push write already
                    # in flight on this socket so the pusher thread is
                    # not left waiting out its timeout on a dead peer.
                    self._drop_subscriber(sub)
                    continue
                self._push_queue.put((sub, wire))

    def _drop_subscriber(self, sub: _Subscription) -> None:
        if self.subscriptions.remove(sub.id) is None:
            return
        self.session.metrics.record_push_dropped()
        self.session.metrics.record_disconnect()
        try:
            sub.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _pusher_loop(self) -> None:
        while True:
            item = self._push_queue.get()
            if item is None:
                return
            sub, payload = item
            try:
                if not self.subscriptions.is_live(sub):
                    continue  # reaped while queued; discard its backlog
                # sub.lock only orders this write against reply writes
                # on the same socket; the send itself is bounded by
                # push_timeout, so a stalled peer delays the queue by at
                # most one timeout before being reaped — it can no
                # longer freeze delivery to every other subscriber.
                with sub.lock:
                    _send_all_bounded(
                        sub.connection, payload, self.push_timeout
                    )
            except OSError as exc:
                # Dead or stalled push channel (timeout counts): drop
                # the subscription; the handler thread notices the
                # close on its next read.
                if self.subscriptions.remove(sub.id) is not None:
                    if isinstance(exc, _PushTimeout):
                        # A stall is a backpressure drop, not a peer
                        # death; count it with the overflow drops.
                        self.session.metrics.record_push_dropped()
                    self.session.metrics.record_disconnect()
                    try:
                        sub.connection.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
            finally:
                self.subscriptions.release(sub, len(payload))

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def handle_line(
        self, line: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        """Dispatch one request line to its verb handler.

        ``connection`` (when serving a real socket) lets long-running
        verbs notice the peer vanishing and cancel the evaluation.
        """
        verb, _, argument = line.partition(" ")
        verb = verb.upper()
        argument = argument.strip()
        set_verb(verb)
        mark_stage("parse")
        handler = {
            "QUERY": self._do_query,
            "PLAN": self._do_plan,
            "FACT": self._do_fact,
            "RETRACT": self._do_retract,
            "SUBSCRIBE": self._do_subscribe,
            "UNSUBSCRIBE": self._do_unsubscribe,
            "STATS": self._do_stats,
            "EXPLAIN": self._do_explain,
            "TRACE": self._do_trace,
            "METRICS": self._do_metrics,
            "PROFILE": self._do_profile,
            "SLOWLOG": self._do_slowlog,
            "REQLOG": self._do_reqlog,
            "HEALTH": self._do_health,
            "RECORD": self._do_record,
        }.get(verb)
        if handler is None:
            return _error_envelope(
                verb, "ProtocolError", f"unknown verb {verb!r}; "
                "expected QUERY, PLAN, FACT, RETRACT, SUBSCRIBE, "
                "UNSUBSCRIBE, STATS, EXPLAIN, TRACE, METRICS, PROFILE, "
                "SLOWLOG, REQLOG, HEALTH or RECORD"
            )
        metered = self.admission is not None and verb in HEAVY_VERBS
        if metered and not self.admission.try_acquire(verb):
            self.session.metrics.record_rejected(verb)
            reply = _error_envelope(
                verb, "Overloaded",
                "server at capacity; retry after the indicated delay",
            )
            reply["retry_after"] = self.retry_after
            return reply
        mark_stage("admission")
        try:
            return handler(argument, connection)
        except ClientDisconnected:
            raise  # nothing to reply to; the handler closes the socket
        except FutureTimeoutError:
            self.session.metrics.record_timeout()
            return _error_envelope(
                verb, "Timeout", f"request exceeded {self.timeout}s budget"
            )
        except Exception as exc:  # envelope instead of a dead connection
            self.session.metrics.record_error()
            return _error_envelope(verb, type(exc).__name__, str(exc))
        finally:
            if metered:
                self.admission.release(verb)

    def _strip(self, argument: str) -> str:
        if argument.startswith("?-"):
            argument = argument[2:].strip()
        if argument.endswith("."):
            argument = argument[:-1]
        return argument

    # ------------------------------------------------------------------
    # Budgeted evaluation helpers
    # ------------------------------------------------------------------
    def _request_budget(self) -> Budget:
        """A fresh per-request budget — always one, even limitless,
        so the wait loop has a cancellation handle."""
        if self.budget is not None:
            budget = self.budget.fork()
        elif self.timeout is not None:
            # Belt and braces: the worker's own deadline matches the
            # server timeout, so an abandoned evaluation self-aborts
            # even if the cancel signal were missed.
            budget = Budget(timeout=self.timeout)
        else:
            budget = Budget()
        # The evaluation runs on a pool thread where the handler
        # thread's active record is invisible; the budget carries the
        # request id across so slowlog entries stay correlated.
        budget.request_id = current_id()
        return budget

    @staticmethod
    def _peer_vanished(connection: socket.socket) -> bool:
        """Non-blocking probe: has the peer closed its end?"""
        flags = getattr(socket, "MSG_DONTWAIT", None)
        if flags is None:
            return False  # platform can't probe without blocking
        try:
            data = connection.recv(1, socket.MSG_PEEK | flags)
        except (BlockingIOError, InterruptedError):
            return False  # no data pending — still connected
        except OSError:
            return True
        return data == b""

    def _await(
        self,
        future,
        budget: Budget,
        connection: Optional[socket.socket],
    ):
        """Wait for a worker result, enforcing the wall-clock timeout
        and watching for the client vanishing; either event cancels the
        request's budget so the worker aborts at its next checkpoint."""
        if self.timeout is None and connection is None:
            return future.result()
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        while True:
            try:
                return future.result(timeout=_POLL_INTERVAL)
            except FutureTimeoutError:
                pass
            if deadline is not None and time.monotonic() >= deadline:
                budget.cancel("request timeout")
                log_event(
                    _log, logging.INFO, "cancel",
                    reason="request timeout",
                    request_id=getattr(budget, "request_id", None),
                )
                raise FutureTimeoutError()
            if (
                connection is not None
                and not self.subscriptions.is_subscribed(connection)
                and self._peer_vanished(connection)
            ):
                # Subscribed connections are exempt from the probe: the
                # pusher may be mid-write on the same socket, and their
                # liveness is established by the push path itself.
                budget.cancel("client disconnected")
                log_event(
                    _log, logging.INFO, "cancel",
                    reason="client disconnected",
                    request_id=getattr(budget, "request_id", None),
                )
                self.session.metrics.record_disconnect()
                raise ClientDisconnected("client disconnected mid-request")

    def _degraded_reply(self, source: str, key: object) -> Dict[str, object]:
        """Answer while the breaker is open: stale cached rows if any,
        else an existence-only probe under a tight budget, else a
        ``CircuitOpen`` envelope with ``retry_after``."""
        cached = self.session.peek_cached(source)
        if cached is not None:
            plan, rows = cached
            return {
                "ok": True,
                "verb": "QUERY",
                "query": source,
                "strategy": plan.strategy,
                "answers": [[str(value) for value in row] for row in rows],
                "count": len(rows),
                "plan_cached": True,
                "result_cached": True,
                "degraded": "cached",
            }
        try:
            found = self.session.exists(
                source, budget=Budget(timeout=0.25, max_rounds=100_000)
            )
        except Exception:
            pass  # even the probe is over budget (or unparsable)
        else:
            return {
                "ok": True,
                "verb": "QUERY",
                "query": source,
                "degraded": "existence",
                "exists": found,
                "answers": [],
                "count": 0,
            }
        remaining = self.breaker.remaining(key) if self.breaker else 0.0
        reply = _error_envelope(
            "QUERY", "CircuitOpen",
            "circuit open for this query shape after repeated budget "
            f"blowouts; retry in {remaining:.2f}s",
        )
        reply["retry_after"] = remaining
        return reply

    def _do_query(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope("QUERY", "ProtocolError", "QUERY needs a query")
        source = self._strip(argument)
        key = None
        if self.breaker is not None:
            try:
                key = self.session.plan_key(source)
            except Exception:
                key = None  # parse errors surface from execute below
            if key is not None and not self.breaker.allow(key):
                return self._degraded_reply(source, key)
        budget = self._request_budget()
        future = self._pool.submit(
            self.session.execute, source, self.max_depth, budget
        )
        try:
            result = self._await(future, budget, connection)
            mark_stage("eval")
        except BudgetExceeded as exc:
            if self.breaker is not None and key is not None:
                self.breaker.record_blowout(key)
            if exc.reason == "deadline":
                # The worker's own deadline races the wait loop's; both
                # mean the same thing, so both render as Timeout.
                self.session.metrics.record_timeout()
                reply = _error_envelope("QUERY", "Timeout", str(exc))
            else:
                self.session.metrics.record_error()
                reply = _error_envelope("QUERY", "BudgetExceeded", str(exc))
            reply["budget"] = exc.as_dict()
            reply["retry_after"] = self.retry_after
            return reply
        if self.breaker is not None and key is not None:
            self.breaker.record_success(key)
        return {
            "ok": True,
            "verb": "QUERY",
            "query": source,
            "strategy": result.strategy,
            "answers": [[str(value) for value in row] for row in result.rows],
            "count": len(result.rows),
            "plan_cached": result.plan_cached,
            "result_cached": result.result_cached,
            "elapsed_ms": result.elapsed * 1e3,
        }

    def _do_plan(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope("PLAN", "ProtocolError", "PLAN needs a query")
        plan, cached = self.session.plan(self._strip(argument))
        return {
            "ok": True,
            "verb": "PLAN",
            "strategy": plan.strategy,
            "recursion_class": plan.recursion_class,
            "plan": plan.explain(),
            "cached": cached,
        }

    def _do_fact(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope("FACT", "ProtocolError", "FACT needs a clause")
        clause = argument if argument.endswith(".") else argument + "."
        rule = parse_rule(clause)
        database = self.session.database
        before = database.version
        self.session.add_rule(rule)  # serializes with in-flight queries
        return {
            "ok": True,
            "verb": "FACT",
            "clause": str(rule),
            "kind": "fact" if rule.is_fact() else "rule",
            "added": database.version != before,
            "edb_version": database.edb_version,
            "idb_version": database.idb_version,
        }

    def _do_retract(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "RETRACT", "ProtocolError", "RETRACT needs a ground fact"
            )
        clause = argument if argument.endswith(".") else argument + "."
        rule = parse_rule(clause)
        if not rule.is_fact():
            return _error_envelope(
                "RETRACT", "ProtocolError",
                "RETRACT takes a ground fact; rules cannot be retracted",
            )
        database = self.session.database
        removed = self.session.retract_fact(rule.head.name, rule.head.args)
        return {
            "ok": True,
            "verb": "RETRACT",
            "clause": str(rule),
            "removed": removed,
            "edb_version": database.edb_version,
            "idb_version": database.idb_version,
        }

    def _parse_predicate(self, argument: str) -> Predicate:
        """``name/arity`` or a literal like ``sg(X, Y)`` → a Predicate."""
        argument = self._strip(argument)
        if "/" in argument:
            name, _, arity_text = argument.partition("/")
            return Predicate(name.strip(), int(arity_text.strip()))
        rule = parse_rule(
            argument if argument.endswith(".") else argument + "."
        )
        return rule.head.predicate

    def _do_subscribe(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "SUBSCRIBE", "ProtocolError",
                "SUBSCRIBE needs a predicate (name/arity or a literal)",
            )
        if connection is None:
            return _error_envelope(
                "SUBSCRIBE", "ProtocolError",
                "SUBSCRIBE needs a live connection to push deltas to",
            )
        predicate = self._parse_predicate(argument)
        problem = self.session.subscribable(predicate)
        if problem is not None:
            return _error_envelope("SUBSCRIBE", "Unsubscribable", problem)
        sub = self.subscriptions.add(connection, predicate)
        # Push channels are long-lived and mostly silent; the idle
        # timeout would reap them mid-subscription.
        connection.settimeout(None)
        return {
            "ok": True,
            "verb": "SUBSCRIBE",
            "subscription": sub.id,
            "predicate": str(predicate),
        }

    def _do_unsubscribe(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        removed: List[int] = []
        if argument:
            sub_id = int(argument)
            if self.subscriptions.remove(sub_id, connection=connection):
                removed.append(sub_id)
        elif connection is not None:
            for sub_id in self.subscriptions.ids_for(connection):
                if self.subscriptions.remove(sub_id, connection=connection):
                    removed.append(sub_id)
        if (
            connection is not None
            and removed
            and not self.subscriptions.is_subscribed(connection)
            and self.idle_timeout is not None
        ):
            connection.settimeout(self.idle_timeout)
        return {"ok": True, "verb": "UNSUBSCRIBE", "removed": removed}

    def _do_stats(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        return {"ok": True, "verb": "STATS", "stats": self.session.stats()}

    def _do_explain(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "EXPLAIN", "ProtocolError", "EXPLAIN needs a query"
            )
        source = self._strip(argument)
        budget = self._request_budget()
        future = self._pool.submit(
            self.session.explain, source, self.max_depth, budget
        )
        report = self._await(future, budget, connection)
        return {"ok": True, "verb": "EXPLAIN", "trace": report}

    def _do_trace(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if argument:
            reply = self._do_explain(argument, connection)
            reply["verb"] = "TRACE"
            return reply
        report = self.session.last_trace
        if report is None:
            return _error_envelope(
                "TRACE", "NoTrace",
                "no traced query yet; use EXPLAIN <query> or TRACE <query>",
            )
        return {"ok": True, "verb": "TRACE", "trace": report}

    def _do_metrics(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        return {
            "ok": True,
            "verb": "METRICS",
            "content_type": "text/plain; version=0.0.4",
            "body": self.session.metrics_text(),
        }

    def _do_profile(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "PROFILE", "ProtocolError", "PROFILE needs a query"
            )
        source = self._strip(argument)
        budget = self._request_budget()
        future = self._pool.submit(
            self.session.profile, source, self.max_depth, budget=budget
        )
        report = self._await(future, budget, connection)
        return {"ok": True, "verb": "PROFILE", "profile": report}

    def _do_slowlog(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if argument.upper() == "CLEAR":
            dropped = self.session.clear_slowlog()
            return {"ok": True, "verb": "SLOWLOG", "cleared": dropped}
        return {
            "ok": True,
            "verb": "SLOWLOG",
            "threshold_ms": self.session.slow_query_ms,
            "entries": self.session.slowlog(),
        }

    def _do_reqlog(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        if argument.upper() == "CLEAR":
            dropped = self.session.lifecycle.clear()
            return {"ok": True, "verb": "REQLOG", "cleared": dropped}
        limit = None
        if argument:
            try:
                limit = int(argument)
            except ValueError:
                return _error_envelope(
                    "REQLOG", "ProtocolError",
                    "REQLOG takes an optional integer limit, or CLEAR",
                )
        return {
            "ok": True,
            "verb": "REQLOG",
            "size": self.session.lifecycle.size,
            "records": self.session.reqlog(limit),
        }

    def _do_health(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        return {"ok": True, "verb": "HEALTH", "health": self.session.health()}

    def _do_record(
        self, argument: str, connection: Optional[socket.socket] = None
    ) -> Dict[str, object]:
        return _do_record_verb(self.session, argument)


def _do_record_verb(session: QuerySession, argument: str) -> Dict[str, object]:
    """RECORD START/STOP/STATUS — shared by both front ends.

    The verb itself is never written to the archive (a replay would
    re-start capture mid-replay), so control and capture compose.
    """
    action, _, rest = argument.partition(" ")
    action = action.upper()
    rest = rest.strip()
    if action == "START":
        if not rest:
            return _error_envelope(
                "RECORD", "ProtocolError", "RECORD START needs an archive path"
            )
        try:
            info = session.start_capture(
                rest, origin=session.lifecycle.origin
            )
        except (RuntimeError, OSError) as exc:
            return _error_envelope("RECORD", "CaptureError", str(exc))
        return {"ok": True, "verb": "RECORD", "recording": True, **info}
    if action == "STOP":
        if not session.capture.active:
            return _error_envelope(
                "RECORD", "CaptureError", "no capture is active"
            )
        summary = session.stop_capture()
        return {"ok": True, "verb": "RECORD", "recording": False, **summary}
    if action in ("", "STATUS"):
        return {"ok": True, "verb": "RECORD", **session.capture.status()}
    return _error_envelope(
        "RECORD", "ProtocolError",
        f"unknown RECORD action {action!r}; expected START <path>, "
        "STOP or STATUS",
    )


def serve(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 8473,
    timeout: Optional[float] = None,
    max_depth: Optional[int] = None,
    slow_query_ms: Optional[float] = None,
    slowlog_size: int = 8,
    reqlog_size: int = 256,
    budget: Optional[Budget] = None,
    max_pending: Optional[int] = 64,
    idle_timeout: Optional[float] = None,
    breaker_threshold: Optional[int] = 3,
    breaker_cooldown: float = 5.0,
    push_backlog: int = 1_048_576,
    push_timeout: Optional[float] = 5.0,
    ivm: bool = False,
) -> QueryServer:
    """Convenience: session + server, already listening (foreground
    serving is the caller's ``serve_forever()`` call).  ``ivm=True``
    turns on incremental view maintenance — cached results are repaired
    instead of flushed on mutation, and SUBSCRIBE works for derived
    predicates."""
    return QueryServer(
        QuerySession(
            database, slow_query_ms=slow_query_ms, slowlog_size=slowlog_size,
            reqlog_size=reqlog_size, ivm=ivm,
        ),
        host=host, port=port,
        timeout=timeout, max_depth=max_depth,
        budget=budget, max_pending=max_pending,
        idle_timeout=idle_timeout,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        push_backlog=push_backlog,
        push_timeout=push_timeout,
    )

"""A threaded TCP line-protocol server over a shared QuerySession.

Protocol: one request per line, one JSON reply envelope per line.

========  ==========================  =======================================
verb      argument                    reply payload
========  ==========================  =======================================
QUERY     a query, e.g. ``sg(ann,Y)``  ``answers`` (rows of rendered terms),
                                      ``count``, ``strategy``, cache flags
PLAN      a query                     ``plan`` (the explain text),
                                      ``strategy``, ``cached``
FACT      a clause, e.g.              ``added`` plus the new version stamp;
          ``parent(ann, bea).``       rules are accepted too and bump the
                                      IDB version instead
STATS     —                           the ``ServiceMetrics`` snapshot plus
                                      cache/database state
EXPLAIN   a query                     evaluate with tracing on; the full
                                      EXPLAIN report — per-round delta
                                      sizes, observed-vs-predicted
                                      expansion ratios, split check
TRACE     a query (optional)          with an argument: alias of EXPLAIN;
                                      without: the last EXPLAIN report
METRICS   —                           ``body``: the metrics in Prometheus
                                      text exposition format
PROFILE   a query                     evaluate with span profiling on; the
                                      per-rule/per-stage wall-clock
                                      attribution report
SLOWLOG   ``CLEAR`` (optional)        retained slow-query entries (span
                                      profile attached), most recent
                                      first; ``CLEAR`` drops them
HEALTH    —                           liveness/pressure summary (uptime,
                                      error/timeout/slow-query counts,
                                      cache and database state)
========  ==========================  =======================================

Raw HTTP ``GET`` request lines on the same port are answered with a
minimal ``HTTP/1.0`` response (connection closed afterwards):
``/metrics`` carries the Prometheus text page, ``/healthz`` the HEALTH
summary as JSON, ``/slowlog`` the slow-query log as JSON — so the TCP
port doubles as a scrape/probe target for ``curl``/Prometheus without
a separate HTTP server.

Every reply is ``{"ok": true, "verb": ..., ...}`` or
``{"ok": false, "verb": ..., "error": {"type": ..., "message": ...}}`` —
parse errors, planning errors, evaluation errors and timeouts all come
back as structured envelopes; the connection (and the server) survives.

``QUERY`` requests run under a wall-clock ``timeout`` and a chain-depth
budget (``max_depth``).  The timeout is enforced by running evaluation
on a worker pool and abandoning the wait: the reply is a ``Timeout``
envelope, while the abandoned evaluation runs to completion in the
background (it still holds the session lock, so a pathological query
delays — but never corrupts — later ones; pick ``max_depth`` to bound
that).  Clients keep the connection open for any number of requests.
"""

from __future__ import annotations

import json
import socketserver
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional, Tuple

from ..datalog.parser import parse_rule
from ..engine.database import Database
from .session import QuerySession

__all__ = ["QueryServer", "serve"]

#: Refuse absurd request lines instead of buffering them.
MAX_LINE_BYTES = 64 * 1024


def _error_envelope(verb: str, exc_type: str, message: str) -> Dict[str, object]:
    return {
        "ok": False,
        "verb": verb,
        "error": {"type": exc_type, "message": message},
    }


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write JSON reply lines."""

    server: "_TCPServer"

    def handle(self) -> None:
        while True:
            try:
                raw = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not raw:
                return
            if raw.startswith(b"GET "):
                # One-shot HTTP request on the line-protocol port:
                # minimal HTTP/1.0 response, then close.  /metrics is
                # the Prometheus scrape; /healthz and /slowlog serve
                # the probes next to it.
                self._handle_http(raw)
                return
            if len(raw) > MAX_LINE_BYTES:
                # readline() returned a *partial* line; drain the rest
                # so the tail is not parsed as a second request (one
                # request line must yield exactly one reply line).
                while not raw.endswith(b"\n"):
                    raw = self.rfile.readline(MAX_LINE_BYTES + 1)
                    if not raw:
                        break
                reply = _error_envelope(
                    "?", "ProtocolError", f"request line over {MAX_LINE_BYTES} bytes"
                )
            else:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                reply = self.server.query_server.handle_line(line)
            try:
                self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
                self.wfile.flush()
            except (ConnectionError, OSError):
                return

    def _handle_http(self, raw: bytes) -> None:
        session = self.server.query_server.session
        try:
            path = raw.split()[1].decode("ascii", errors="replace")
        except IndexError:
            path = "/"
        path = path.split("?", 1)[0]
        if path == "/metrics":
            status = b"200 OK"
            content_type = b"text/plain; version=0.0.4; charset=utf-8"
            body = session.metrics_text().encode("utf-8")
        elif path == "/healthz":
            status = b"200 OK"
            content_type = b"application/json; charset=utf-8"
            body = json.dumps(session.health()).encode("utf-8")
        elif path == "/slowlog":
            status = b"200 OK"
            content_type = b"application/json; charset=utf-8"
            body = json.dumps(session.slowlog()).encode("utf-8")
        else:
            status = b"404 Not Found"
            content_type = b"text/plain; charset=utf-8"
            body = (
                f"no route {path}; try /metrics, /healthz or /slowlog\n"
            ).encode("utf-8")
        try:
            self.wfile.write(
                b"HTTP/1.0 " + status + b"\r\n"
                b"Content-Type: " + content_type + b"\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            self.wfile.flush()
        except (ConnectionError, OSError):
            pass


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    query_server: "QueryServer"


class QueryServer:
    """Serve a :class:`QuerySession` over TCP.

    ``timeout`` is the per-request wall-clock budget in seconds (None
    disables it); ``max_depth`` the per-request chain-depth budget
    (None defers to the session's own).
    """

    def __init__(
        self,
        session: QuerySession,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = None,
        max_depth: Optional[int] = None,
        workers: int = 8,
    ):
        self.session = session
        self.timeout = timeout
        self.max_depth = max_depth
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.query_server = self
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def for_database(cls, database: Database, **kwargs) -> "QueryServer":
        return cls(QuerySession(database), **kwargs)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._tcp.server_address[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        self._tcp.serve_forever()

    def start(self) -> "QueryServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-server", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        self._pool.shutdown(wait=False)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> Dict[str, object]:
        """Dispatch one request line to its verb handler."""
        verb, _, argument = line.partition(" ")
        verb = verb.upper()
        argument = argument.strip()
        handler = {
            "QUERY": self._do_query,
            "PLAN": self._do_plan,
            "FACT": self._do_fact,
            "STATS": self._do_stats,
            "EXPLAIN": self._do_explain,
            "TRACE": self._do_trace,
            "METRICS": self._do_metrics,
            "PROFILE": self._do_profile,
            "SLOWLOG": self._do_slowlog,
            "HEALTH": self._do_health,
        }.get(verb)
        if handler is None:
            return _error_envelope(
                verb, "ProtocolError", f"unknown verb {verb!r}; "
                "expected QUERY, PLAN, FACT, STATS, EXPLAIN, TRACE, "
                "METRICS, PROFILE, SLOWLOG or HEALTH"
            )
        try:
            return handler(argument)
        except FutureTimeoutError:
            self.session.metrics.record_timeout()
            return _error_envelope(
                verb, "Timeout", f"request exceeded {self.timeout}s budget"
            )
        except Exception as exc:  # envelope instead of a dead connection
            self.session.metrics.record_error()
            return _error_envelope(verb, type(exc).__name__, str(exc))

    def _strip(self, argument: str) -> str:
        if argument.startswith("?-"):
            argument = argument[2:].strip()
        if argument.endswith("."):
            argument = argument[:-1]
        return argument

    def _do_query(self, argument: str) -> Dict[str, object]:
        if not argument:
            return _error_envelope("QUERY", "ProtocolError", "QUERY needs a query")
        source = self._strip(argument)
        future = self._pool.submit(
            self.session.execute, source, self.max_depth
        )
        result = future.result(timeout=self.timeout)
        return {
            "ok": True,
            "verb": "QUERY",
            "query": source,
            "strategy": result.strategy,
            "answers": [[str(value) for value in row] for row in result.rows],
            "count": len(result.rows),
            "plan_cached": result.plan_cached,
            "result_cached": result.result_cached,
            "elapsed_ms": result.elapsed * 1e3,
        }

    def _do_plan(self, argument: str) -> Dict[str, object]:
        if not argument:
            return _error_envelope("PLAN", "ProtocolError", "PLAN needs a query")
        plan, cached = self.session.plan(self._strip(argument))
        return {
            "ok": True,
            "verb": "PLAN",
            "strategy": plan.strategy,
            "recursion_class": plan.recursion_class,
            "plan": plan.explain(),
            "cached": cached,
        }

    def _do_fact(self, argument: str) -> Dict[str, object]:
        if not argument:
            return _error_envelope("FACT", "ProtocolError", "FACT needs a clause")
        clause = argument if argument.endswith(".") else argument + "."
        rule = parse_rule(clause)
        database = self.session.database
        before = database.version
        self.session.add_rule(rule)  # serializes with in-flight queries
        return {
            "ok": True,
            "verb": "FACT",
            "clause": str(rule),
            "kind": "fact" if rule.is_fact() else "rule",
            "added": database.version != before,
            "edb_version": database.edb_version,
            "idb_version": database.idb_version,
        }

    def _do_stats(self, argument: str) -> Dict[str, object]:
        return {"ok": True, "verb": "STATS", "stats": self.session.stats()}

    def _do_explain(self, argument: str) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "EXPLAIN", "ProtocolError", "EXPLAIN needs a query"
            )
        source = self._strip(argument)
        future = self._pool.submit(self.session.explain, source, self.max_depth)
        report = future.result(timeout=self.timeout)
        return {"ok": True, "verb": "EXPLAIN", "trace": report}

    def _do_trace(self, argument: str) -> Dict[str, object]:
        if argument:
            reply = self._do_explain(argument)
            reply["verb"] = "TRACE"
            return reply
        report = self.session.last_trace
        if report is None:
            return _error_envelope(
                "TRACE", "NoTrace",
                "no traced query yet; use EXPLAIN <query> or TRACE <query>",
            )
        return {"ok": True, "verb": "TRACE", "trace": report}

    def _do_metrics(self, argument: str) -> Dict[str, object]:
        return {
            "ok": True,
            "verb": "METRICS",
            "content_type": "text/plain; version=0.0.4",
            "body": self.session.metrics_text(),
        }

    def _do_profile(self, argument: str) -> Dict[str, object]:
        if not argument:
            return _error_envelope(
                "PROFILE", "ProtocolError", "PROFILE needs a query"
            )
        source = self._strip(argument)
        future = self._pool.submit(self.session.profile, source, self.max_depth)
        report = future.result(timeout=self.timeout)
        return {"ok": True, "verb": "PROFILE", "profile": report}

    def _do_slowlog(self, argument: str) -> Dict[str, object]:
        if argument.upper() == "CLEAR":
            dropped = self.session.clear_slowlog()
            return {"ok": True, "verb": "SLOWLOG", "cleared": dropped}
        return {
            "ok": True,
            "verb": "SLOWLOG",
            "threshold_ms": self.session.slow_query_ms,
            "entries": self.session.slowlog(),
        }

    def _do_health(self, argument: str) -> Dict[str, object]:
        return {"ok": True, "verb": "HEALTH", "health": self.session.health()}


def serve(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 8473,
    timeout: Optional[float] = None,
    max_depth: Optional[int] = None,
    slow_query_ms: Optional[float] = None,
    slowlog_size: int = 8,
) -> QueryServer:
    """Convenience: session + server, already listening (foreground
    serving is the caller's ``serve_forever()`` call)."""
    return QueryServer(
        QuerySession(
            database, slow_query_ms=slow_query_ms, slowlog_size=slowlog_size
        ),
        host=host, port=port,
        timeout=timeout, max_depth=max_depth,
    )

"""Per-query metrics for the serving layer.

The engine's :class:`~repro.engine.counters.Counters` measure *work*
inside one evaluation; a long-lived service additionally needs
*service-level* observability — request latency, cache effectiveness,
which strategies actually serve the traffic — aggregated across every
query a :class:`~repro.service.session.QuerySession` answers.
:class:`ServiceMetrics` collects both: it merges the per-run engine
counters and keeps its own latency/hit-rate aggregates, all behind one
lock so concurrent sessions and server threads can share an instance.

``snapshot()`` returns a plain JSON-serializable dict; the server's
``STATS`` verb is exactly that snapshot in a reply envelope.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..engine.counters import Counters

__all__ = ["LatencyStats", "ServiceMetrics"]


class LatencyStats:
    """Streaming min/mean/max over a series of durations (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def as_dict(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_ms": self.total * 1e3,
            "mean_ms": mean * 1e3,
            "min_ms": (self.min or 0.0) * 1e3,
            "max_ms": (self.max or 0.0) * 1e3,
        }


class ServiceMetrics:
    """Thread-safe aggregates over every query a session served."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.errors = 0
        self.timeouts = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        #: Result-cache flushes (any EDB/IDB mutation observed).
        self.result_invalidations = 0
        #: Plan-cache flushes (IDB mutation observed).
        self.plan_invalidations = 0
        #: Queries served per strategy name.
        self.strategy_histogram: Dict[str, int] = {}
        self.latency = LatencyStats()
        #: Latency of result-cache hits vs queries that evaluated.
        self.cached_latency = LatencyStats()
        self.evaluated_latency = LatencyStats()
        #: Engine work counters summed over all evaluated queries.
        self.engine_counters = Counters()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_query(
        self,
        strategy: str,
        seconds: float,
        plan_cached: bool,
        result_cached: bool,
        counters: Optional[Counters] = None,
    ) -> None:
        """Account one successfully answered query."""
        with self._lock:
            self.queries += 1
            self.strategy_histogram[strategy] = (
                self.strategy_histogram.get(strategy, 0) + 1
            )
            self.latency.record(seconds)
            if result_cached:
                self.result_cache_hits += 1
                self.cached_latency.record(seconds)
            else:
                self.result_cache_misses += 1
                self.evaluated_latency.record(seconds)
                if plan_cached:
                    self.plan_cache_hits += 1
                else:
                    self.plan_cache_misses += 1
                if counters is not None:
                    self.engine_counters.merge(counters)

    def record_plan(self, cached: bool) -> None:
        """Account a plan-only request (``PLAN`` verb, ``:plan``)."""
        with self._lock:
            if cached:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1
            self.errors += 1

    def record_invalidation(self, plans: bool) -> None:
        with self._lock:
            self.result_invalidations += 1
            if plans:
                self.plan_invalidations += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy of every aggregate."""
        with self._lock:
            return {
                "queries": self.queries,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "plan_cache": {
                    "hits": self.plan_cache_hits,
                    "misses": self.plan_cache_misses,
                    "invalidations": self.plan_invalidations,
                },
                "result_cache": {
                    "hits": self.result_cache_hits,
                    "misses": self.result_cache_misses,
                    "invalidations": self.result_invalidations,
                },
                "strategies": dict(self.strategy_histogram),
                "latency": self.latency.as_dict(),
                "cached_latency": self.cached_latency.as_dict(),
                "evaluated_latency": self.evaluated_latency.as_dict(),
                "engine": self.engine_counters.as_dict(),
            }

    def reset(self) -> None:
        with self._lock:
            self.queries = self.errors = self.timeouts = 0
            self.plan_cache_hits = self.plan_cache_misses = 0
            self.result_cache_hits = self.result_cache_misses = 0
            self.result_invalidations = self.plan_invalidations = 0
            self.strategy_histogram = {}
            self.latency = LatencyStats()
            self.cached_latency = LatencyStats()
            self.evaluated_latency = LatencyStats()
            self.engine_counters = Counters()

    def __repr__(self) -> str:
        return (
            f"ServiceMetrics({self.queries} queries, "
            f"{self.result_cache_hits} result hits, "
            f"{self.plan_cache_hits} plan hits)"
        )

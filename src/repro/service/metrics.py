"""Per-query metrics for the serving layer.

The engine's :class:`~repro.engine.counters.Counters` measure *work*
inside one evaluation; a long-lived service additionally needs
*service-level* observability — request latency, cache effectiveness,
which strategies actually serve the traffic — aggregated across every
query a :class:`~repro.service.session.QuerySession` answers.
:class:`ServiceMetrics` collects both: it merges the per-run engine
counters and keeps its own latency/hit-rate aggregates, all behind one
lock so concurrent sessions and server threads can share an instance.

``snapshot()`` returns a plain JSON-serializable dict; the server's
``STATS`` verb is exactly that snapshot in a reply envelope.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from ..engine.counters import Counters

__all__ = ["LatencyStats", "LatencyHistogram", "ServiceMetrics"]


class LatencyStats:
    """Streaming min/mean/max over a series of durations (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def as_dict(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_ms": self.total * 1e3,
            "mean_ms": mean * 1e3,
            "min_ms": (self.min or 0.0) * 1e3,
            "max_ms": (self.max or 0.0) * 1e3,
        }


#: Log-spaced latency bucket upper bounds (seconds): 100µs … ~56s in
#: quarter-decade steps.  Fixed at construction, so memory is bounded
#: regardless of traffic — the Prometheus histogram contract.
DEFAULT_LATENCY_BOUNDS: Sequence[float] = tuple(
    1e-4 * (10 ** (i / 4)) for i in range(24)
)


class LatencyHistogram:
    """Bounded-bucket latency histogram with interpolated quantiles.

    :class:`LatencyStats` keeps min/mean/max, which hides tail
    behaviour entirely; this keeps a fixed set of log-spaced buckets
    (plus one overflow bucket) and estimates p50/p95/p99 by linear
    interpolation inside the bucket containing the target rank —
    exactly the estimate a Prometheus ``histogram_quantile`` over the
    exported buckets would compute.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.bounds = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.bounds):
                    # Overflow bucket has no upper bound: clamp to the
                    # largest finite bound.
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                into = (target - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * max(0.0, min(1.0, into))
        return self.bounds[-1]

    def as_dict(self) -> Dict[str, object]:
        cumulative = 0
        buckets = []
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets.append({"le": bound, "count": cumulative})
        # +Inf bucket: ``le`` is None because strict JSON has no
        # Infinity literal.
        buckets.append({"le": None, "count": self.count})
        return {
            "count": self.count,
            "sum_ms": self.total * 1e3,
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "buckets": buckets,
        }


class ServiceMetrics:
    """Thread-safe aggregates over every query a session served."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.errors = 0
        self.timeouts = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        #: Result-cache flushes (any EDB/IDB mutation observed).
        self.result_invalidations = 0
        #: Plan-cache flushes (IDB mutation observed).
        self.plan_invalidations = 0
        #: Queries served per strategy name.
        self.strategy_histogram: Dict[str, int] = {}
        self.latency = LatencyStats()
        #: Latency of result-cache hits vs queries that evaluated.
        self.cached_latency = LatencyStats()
        self.evaluated_latency = LatencyStats()
        #: Bucketed latency distributions (p50/p95/p99), overall and
        #: for queries that actually evaluated.
        self.latency_histogram = LatencyHistogram()
        self.evaluated_latency_histogram = LatencyHistogram()
        #: Request latency per verb (QUERY/PLAN/FACT), so a flood of
        #: cheap FACT inserts cannot hide a QUERY tail — exported as
        #: one labelled Prometheus histogram family.
        self.verb_latency: Dict[str, LatencyHistogram] = {}
        #: Per-stage request lifecycle latency (read/queue/parse/
        #: admission/worker/eval/serialize/outbox/flush) fed by the
        #: flight recorder on commit — exported as one labelled
        #: ``repro_stage_latency_seconds`` family.
        self.stage_latency: Dict[str, LatencyHistogram] = {}
        #: Time heavy verbs waited for a free evaluator worker.
        self.worker_wait = LatencyHistogram()
        #: Queries that tripped the session's ``slow_query_ms``
        #: threshold and were retained in the slow-query log.
        self.slow_queries = 0
        #: Requests shed by admission control (``OVERLOADED`` replies).
        self.rejected = 0
        self.rejected_by_verb: Dict[str, int] = {}
        #: Evaluations aborted by a resource :class:`~repro.resilience.Budget`.
        self.budget_exceeded = 0
        #: Clients that vanished mid-request (write failed or the peer
        #: closed while the query was still running).
        self.disconnects = 0
        #: Subscribers dropped because their push backlog overflowed or
        #: a push write stayed blocked past the send timeout.
        self.push_dropped = 0
        #: Optional zero-arg callable returning the evaluator worker
        #: pool's gauge snapshot (size/queue depth/restarts); installed
        #: by the server the same way as :attr:`breaker_provider`.
        self.worker_provider = None
        #: Optional zero-arg callable returning event-loop gauges
        #: (loop lag, connection count, outbox depths); installed by
        #: :class:`~repro.service.eventloop.AsyncQueryServer`.
        self.eventloop_provider = None
        #: Optional zero-arg callable that folds the flight recorder's
        #: pending stage timelines into :attr:`stage_latency`; installed
        #: by the session so histogram feeding happens lazily at
        #: snapshot time instead of on the serving thread.
        self.stage_drain = None
        #: Optional zero-arg callable returning the circuit breaker's
        #: ``snapshot()``; the server installs it so STATS/metrics can
        #: surface breaker state without metrics importing the breaker.
        self.breaker_provider = None
        #: Incremental view maintenance (``repro.ivm``) aggregates.
        #: Cached results repaired in place instead of evicted:
        self.ivm_repairs = 0
        #: Cached results kept untouched (closure disjoint from the
        #: mutated relations — selective invalidation):
        self.ivm_results_kept = 0
        #: Tuples rederived after a DRed over-delete:
        self.ivm_rederivations = 0
        #: Views that fell back to a full recompute:
        self.ivm_recomputes = 0
        #: Maintenance runs folded into materializations:
        self.ivm_maintenance_runs = 0
        #: Maintenance runs that faulted (view went dirty):
        self.ivm_failures = 0
        #: Queries answered straight from a materialized view:
        self.ivm_view_serves = 0
        #: Optional zero-arg callable returning the current number of
        #: active subscriptions (installed by the server, same pattern
        #: as :attr:`breaker_provider`).
        self.subscriber_provider = None
        #: Engine work counters summed over all evaluated queries.
        self.engine_counters = Counters()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_query(
        self,
        strategy: str,
        seconds: float,
        plan_cached: bool,
        result_cached: bool,
        counters: Optional[Counters] = None,
    ) -> None:
        """Account one successfully answered query."""
        with self._lock:
            self.queries += 1
            self.strategy_histogram[strategy] = (
                self.strategy_histogram.get(strategy, 0) + 1
            )
            self.latency.record(seconds)
            self.latency_histogram.record(seconds)
            if result_cached:
                self.result_cache_hits += 1
                self.cached_latency.record(seconds)
            else:
                self.result_cache_misses += 1
                self.evaluated_latency.record(seconds)
                self.evaluated_latency_histogram.record(seconds)
                if plan_cached:
                    self.plan_cache_hits += 1
                else:
                    self.plan_cache_misses += 1
                if counters is not None:
                    self.engine_counters.merge(counters)

    def record_verb(self, verb: str, seconds: float) -> None:
        """Account one request's latency under its verb label."""
        with self._lock:
            hist = self.verb_latency.get(verb)
            if hist is None:
                hist = self.verb_latency[verb] = LatencyHistogram()
            hist.record(seconds)

    def record_slow_query(self) -> None:
        with self._lock:
            self.slow_queries += 1

    def record_stage(self, stage: str, seconds: float) -> None:
        """Account one lifecycle stage duration under its label."""
        with self._lock:
            hist = self.stage_latency.get(stage)
            if hist is None:
                hist = self.stage_latency[stage] = LatencyHistogram()
            hist.record(seconds)

    def record_stages_ns(self, durations_ns: Dict[str, int]) -> None:
        """Account one request's whole stage timeline (values in
        nanoseconds) under one lock acquisition — the flight recorder
        commits 6-9 stages per request, and a lock round-trip plus a
        unit-conversion dict for each would tax the serving path."""
        with self._lock:
            for stage, ns in durations_ns.items():
                hist = self.stage_latency.get(stage)
                if hist is None:
                    hist = self.stage_latency[stage] = LatencyHistogram()
                hist.record(ns / 1e9)

    def record_worker_wait(self, seconds: float) -> None:
        """Account one wait for a free evaluator worker."""
        with self._lock:
            self.worker_wait.record(seconds)

    def record_plan(self, cached: bool) -> None:
        """Account a plan-only request (``PLAN`` verb, ``:plan``)."""
        with self._lock:
            if cached:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1
            self.errors += 1

    def record_rejected(self, verb: str) -> None:
        """Account one request shed by admission control."""
        with self._lock:
            self.rejected += 1
            self.rejected_by_verb[verb] = self.rejected_by_verb.get(verb, 0) + 1

    def record_budget_exceeded(self) -> None:
        with self._lock:
            self.budget_exceeded += 1

    def record_disconnect(self) -> None:
        with self._lock:
            self.disconnects += 1

    def record_push_dropped(self) -> None:
        """Account one subscriber dropped from the push channel."""
        with self._lock:
            self.push_dropped += 1

    def record_invalidation(self, plans: bool) -> None:
        with self._lock:
            self.result_invalidations += 1
            if plans:
                self.plan_invalidations += 1

    def record_ivm_sync(self, kept: int, repaired: int) -> None:
        """Account one selective cache sync: entries kept vs repaired."""
        with self._lock:
            self.ivm_results_kept += kept
            self.ivm_repairs += repaired

    def record_ivm_maintenance(
        self,
        rederivations: int = 0,
        recomputed: bool = False,
        failed: bool = False,
    ) -> None:
        """Account one maintenance run folded into a materialization."""
        with self._lock:
            self.ivm_maintenance_runs += 1
            self.ivm_rederivations += rederivations
            if recomputed:
                self.ivm_recomputes += 1
            if failed:
                self.ivm_failures += 1

    def record_ivm_recompute(self) -> None:
        with self._lock:
            self.ivm_recomputes += 1

    def record_view_serve(self) -> None:
        with self._lock:
            self.ivm_view_serves += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy of every aggregate."""
        # Breaker state is owned by the server's CircuitBreaker (its own
        # lock); call the provider outside ours to avoid nesting locks.
        # Same for the subscription registry.
        provider = self.breaker_provider
        breaker = provider() if provider is not None else None
        sub_provider = self.subscriber_provider
        subscribers = sub_provider() if sub_provider is not None else None
        worker_provider = self.worker_provider
        workers = worker_provider() if worker_provider is not None else None
        loop_provider = self.eventloop_provider
        eventloop = loop_provider() if loop_provider is not None else None
        # Catch the stage histograms up with the flight recorder's
        # pending commits (record_stages_ns takes our lock itself, so
        # drain before entering it).
        drain = self.stage_drain
        if drain is not None:
            drain()
        with self._lock:
            snap = {
                "queries": self.queries,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "plan_cache": {
                    "hits": self.plan_cache_hits,
                    "misses": self.plan_cache_misses,
                    "invalidations": self.plan_invalidations,
                },
                "result_cache": {
                    "hits": self.result_cache_hits,
                    "misses": self.result_cache_misses,
                    "invalidations": self.result_invalidations,
                },
                "strategies": dict(self.strategy_histogram),
                "latency": self.latency.as_dict(),
                "cached_latency": self.cached_latency.as_dict(),
                "evaluated_latency": self.evaluated_latency.as_dict(),
                "latency_histogram": self.latency_histogram.as_dict(),
                "evaluated_latency_histogram": (
                    self.evaluated_latency_histogram.as_dict()
                ),
                "verb_latency": {
                    verb: hist.as_dict()
                    for verb, hist in sorted(self.verb_latency.items())
                },
                "stage_latency": {
                    stage: hist.as_dict()
                    for stage, hist in sorted(self.stage_latency.items())
                },
                "worker_wait_histogram": self.worker_wait.as_dict(),
                "slow_queries": self.slow_queries,
                "rejected": self.rejected,
                "rejected_by_verb": dict(self.rejected_by_verb),
                "budget_exceeded": self.budget_exceeded,
                "disconnects": self.disconnects,
                "push_dropped": self.push_dropped,
                "ivm": {
                    "repairs": self.ivm_repairs,
                    "results_kept": self.ivm_results_kept,
                    "rederivations": self.ivm_rederivations,
                    "recomputes": self.ivm_recomputes,
                    "maintenance_runs": self.ivm_maintenance_runs,
                    "failures": self.ivm_failures,
                    "view_serves": self.ivm_view_serves,
                },
                "engine": self.engine_counters.as_dict(),
            }
        if breaker is not None:
            snap["breaker"] = breaker
        if subscribers is not None:
            snap["subscribers"] = subscribers
        if workers is not None:
            snap["workers"] = workers
        if eventloop is not None:
            snap["eventloop"] = eventloop
        return snap

    def reset(self) -> None:
        with self._lock:
            self.queries = self.errors = self.timeouts = 0
            self.plan_cache_hits = self.plan_cache_misses = 0
            self.result_cache_hits = self.result_cache_misses = 0
            self.result_invalidations = self.plan_invalidations = 0
            self.strategy_histogram = {}
            self.latency = LatencyStats()
            self.cached_latency = LatencyStats()
            self.evaluated_latency = LatencyStats()
            self.latency_histogram = LatencyHistogram()
            self.evaluated_latency_histogram = LatencyHistogram()
            self.verb_latency = {}
            self.stage_latency = {}
            self.worker_wait = LatencyHistogram()
            self.slow_queries = 0
            self.rejected = 0
            self.rejected_by_verb = {}
            self.budget_exceeded = 0
            self.disconnects = 0
            self.push_dropped = 0
            self.ivm_repairs = self.ivm_results_kept = 0
            self.ivm_rederivations = self.ivm_recomputes = 0
            self.ivm_maintenance_runs = self.ivm_failures = 0
            self.ivm_view_serves = 0
            self.engine_counters = Counters()

    def __repr__(self) -> str:
        # Counter reads must hold the lock too: on implementations
        # without a GIL-serialized int read this could otherwise tear
        # against a concurrent record_query.
        with self._lock:
            return (
                f"ServiceMetrics({self.queries} queries, "
                f"{self.result_cache_hits} result hits, "
                f"{self.plan_cache_hits} plan hits)"
            )

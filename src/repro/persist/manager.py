"""Checkpointing and crash recovery over the WAL + snapshot store.

Data directory layout::

    <data-dir>/
        wal/        wal-<first-lsn>.jsonl segments (repro.persist.wal)
        snapshots/  snapshot-<lsn>.json checkpoints (repro.persist.snapshot)

:func:`recover_database` is the read-side: restore the newest *valid*
snapshot (corrupt ones are skipped, older ones tried), replay every
WAL record past its LSN, tolerate a torn final record, and refuse —
with the bad LSN — a log damaged anywhere else.  Replay drives the
same public :class:`~repro.engine.database.Database` mutation API the
original traffic used, so the version counters (global and
per-relation) arrive at exactly the values the never-crashed process
had: client-visible version-stamped envelopes stay coherent across a
restart.

:class:`PersistenceManager` is the write-side lifecycle owner: it
opens the store, attaches the WAL to the database's mutation path
(every committed mutation is logged *before* the mutating call
returns, hence before any reply is flushed), decides when to cut a
checkpoint, prunes snapshots, and truncates fully-covered segments.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .snapshot import (
    SnapshotCorruptionError,
    load_snapshot_file,
    restore_database,
    snapshot_database,
    write_snapshot_file,
)
from .wal import (
    WalCorruptionError,
    WriteAheadLog,
    scan_wal,
    truncate_torn_tail,
)

__all__ = [
    "PersistenceManager",
    "RecoveryError",
    "RecoveryInfo",
    "list_snapshots",
    "recover_database",
]

WAL_SUBDIR = "wal"
SNAPSHOT_SUBDIR = "snapshots"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{20})\.json$")

#: Test hook: seconds to sleep inside the checkpoint critical window
#: (between building the snapshot and its atomic rename).  The
#: kill-storm harness widens the window so scheduled SIGKILLs land
#: *mid-snapshot*; production never sets it.
_CHAOS_DELAY_ENV = "REPRO_PERSIST_CHAOS_DELAY_S"


class RecoveryError(RuntimeError):
    """The store cannot be loaded to any acknowledged-prefix state."""

    def __init__(self, message: str, lsn: Optional[int] = None):
        self.lsn = lsn
        super().__init__(message)


@dataclass
class RecoveryInfo:
    """What one startup recovery did, for logs/metrics/`repro recover`."""

    snapshot_path: Optional[str] = None
    snapshot_lsn: int = 0
    replayed: int = 0
    last_lsn: int = 0
    torn_tail: Optional[Dict[str, Any]] = None
    #: Newer snapshot files skipped for failing verification.
    skipped_snapshots: List[Dict[str, str]] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def fresh(self) -> bool:
        """True when the store held no prior state at all."""
        return self.snapshot_path is None and self.last_lsn == 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_path": self.snapshot_path,
            "snapshot_lsn": self.snapshot_lsn,
            "replayed": self.replayed,
            "last_lsn": self.last_lsn,
            "torn_tail": self.torn_tail,
            "skipped_snapshots": self.skipped_snapshots,
            "elapsed_s": self.elapsed_s,
            "fresh": self.fresh,
        }


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def _parse_row(name: str, row: List[str]):
    """Rendered term strings back to terms, via the parser round trip."""
    from ..datalog.parser import parse_rule

    clause = f"{name}({', '.join(row)})." if row else f"{name}."
    return parse_rule(clause).head.args


def apply_wal_record(database, record: Dict[str, Any]) -> None:
    """Replay one verified WAL record through the public mutation API.

    The record was logged from the same API against the same prior
    state, so replay reproduces the original's net effect, insertion
    order, and version-counter bumps exactly.
    """
    op = record.get("op")
    if op == "fact":
        database.add_fact(record["name"], _parse_row(record["name"], record["row"]))
    elif op == "retract":
        database.retract_fact(
            record["name"], _parse_row(record["name"], record["row"])
        )
    elif op == "batch":
        database.apply_batch(
            (mut_op, name, _parse_row(name, row))
            for mut_op, name, row in record["muts"]
        )
    elif op == "relation":
        from ..engine.relation import Relation, wrap_term

        relation = Relation(record["name"], record["arity"])
        for row in record["rows"]:
            relation.add(
                tuple(wrap_term(v) for v in _parse_row(record["name"], row))
            )
        database.add_relation(relation)
    elif op == "rule":
        from ..datalog.parser import parse_rule

        database.add_rule(parse_rule(record["text"]))
    else:
        raise RecoveryError(
            f"WAL record lsn {record.get('lsn')} has unknown op {op!r}",
            lsn=record.get("lsn"),
        )


def list_snapshots(data_dir: str) -> List[Tuple[int, str]]:
    """``(lsn, path)`` for every checkpoint file, newest first."""
    directory = os.path.join(data_dir, SNAPSHOT_SUBDIR)
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def recover_database(data_dir: str, strict: bool = False):
    """Rebuild ``(database, RecoveryInfo)`` from a data directory.

    Read-only: nothing under ``data_dir`` is modified, so it is safe
    to run against a store a crashed server left behind (or, for
    verification, a copy of a live one).  ``strict`` refuses even a
    torn WAL tail and corrupt snapshot files instead of tolerating
    them — the ``repro recover --verify`` contract.
    """
    from ..engine.database import Database

    start = time.perf_counter()
    info = RecoveryInfo()
    database = None
    for lsn, path in list_snapshots(data_dir):
        try:
            loaded = load_snapshot_file(path)
        except SnapshotCorruptionError as exc:
            if strict:
                raise
            info.skipped_snapshots.append(
                {"path": path, "reason": exc.reason}
            )
            continue
        database = restore_database(loaded["snapshot"])
        info.snapshot_path = path
        info.snapshot_lsn = loaded["lsn"]
        break
    if database is None:
        database = Database()
    records, torn = scan_wal(
        os.path.join(data_dir, WAL_SUBDIR),
        after_lsn=info.snapshot_lsn,
        strict=strict,
    )
    info.torn_tail = torn
    if records and records[0]["lsn"] > info.snapshot_lsn + 1:
        raise RecoveryError(
            f"WAL gap after snapshot: checkpoint covers lsn "
            f"{info.snapshot_lsn} but the oldest surviving record is lsn "
            f"{records[0]['lsn']} — segments are missing",
            lsn=info.snapshot_lsn + 1,
        )
    for record in records:
        apply_wal_record(database, record)
    info.replayed = len(records)
    info.last_lsn = records[-1]["lsn"] if records else info.snapshot_lsn
    database.last_lsn = info.last_lsn
    info.elapsed_s = time.perf_counter() - start
    return database, info


# ----------------------------------------------------------------------
# The write-side lifecycle owner
# ----------------------------------------------------------------------
class PersistenceManager:
    """Owns one data directory: WAL attachment, checkpoints, pruning.

    Mutual exclusion is inherited from the caller: every entry point
    that touches the database (:meth:`checkpoint`,
    :meth:`maybe_checkpoint`) must run under the same lock that
    serializes mutations — the session lock in the serving stack.
    """

    def __init__(
        self,
        data_dir: str,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        segment_bytes: int = 4 * 1024 * 1024,
        snapshot_every: int = 4096,
        keep_snapshots: int = 2,
        checkpoint_on_close: bool = True,
    ):
        self.data_dir = data_dir
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.segment_bytes = segment_bytes
        self.snapshot_every = snapshot_every
        self.keep_snapshots = max(1, keep_snapshots)
        self.checkpoint_on_close = checkpoint_on_close
        self.database = None
        self.recovery: Optional[RecoveryInfo] = None
        self.wal: Optional[WriteAheadLog] = None
        self.checkpoints = 0
        self.truncated_segments = 0
        self.last_snapshot_lsn = 0
        self.last_snapshot_s = 0.0
        self.recovery_seconds: Optional[float] = None
        self._records_at_checkpoint = 0

    @classmethod
    def open(cls, data_dir: str, **kwargs) -> "PersistenceManager":
        """Recover the store and attach the WAL for new mutations."""
        manager = cls(data_dir, **kwargs)
        database, info = recover_database(data_dir)
        if info.torn_tail is not None:
            # The tolerated torn record must not survive into the new
            # epoch: cut it out so the next scan sees a clean log and
            # the writer cannot collide with a half-written segment.
            truncate_torn_tail(info.torn_tail)
        os.makedirs(os.path.join(data_dir, SNAPSHOT_SUBDIR), exist_ok=True)
        manager.wal = WriteAheadLog(
            os.path.join(data_dir, WAL_SUBDIR),
            fsync=manager.fsync,
            fsync_interval_s=manager.fsync_interval_s,
            segment_bytes=manager.segment_bytes,
            start_lsn=info.last_lsn,
        )
        manager.database = database
        manager.recovery = info
        manager.recovery_seconds = info.elapsed_s
        manager.last_snapshot_lsn = info.snapshot_lsn
        database.wal = manager.wal
        return manager

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def maybe_checkpoint(self) -> Optional[Dict[str, Any]]:
        """Cut a checkpoint when enough WAL has accrued since the last.

        Called from the session's mutation passthroughs (under the
        session lock), so the snapshot is always consistent.
        """
        if self.wal is None or self.database is None:
            return None
        if self.wal.records - self._records_at_checkpoint < self.snapshot_every:
            return None
        return self.checkpoint()

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the database and truncate fully-replayed segments."""
        if self.wal is None or self.database is None:
            raise RuntimeError("PersistenceManager is not open")
        start = time.perf_counter()
        lsn = self.database.last_lsn
        snapshot = snapshot_database(self.database)
        # The checkpoint claims "the WAL through `lsn` is durable and
        # this file covers it" — make the first half true before the
        # file exists.
        self.wal.sync()
        delay = float(os.environ.get(_CHAOS_DELAY_ENV, 0) or 0)
        if delay > 0:
            time.sleep(delay)
        path = os.path.join(
            self.data_dir, SNAPSHOT_SUBDIR, f"snapshot-{lsn:020d}.json"
        )
        write_snapshot_file(path, lsn, snapshot)
        self._prune_snapshots()
        truncated = self.wal.truncate_through(lsn)
        self.checkpoints += 1
        self.truncated_segments += truncated
        self.last_snapshot_lsn = lsn
        self.last_snapshot_s = time.perf_counter() - start
        self._records_at_checkpoint = self.wal.records
        return {
            "lsn": lsn,
            "path": path,
            "truncated_segments": truncated,
            "elapsed_s": self.last_snapshot_s,
        }

    def _prune_snapshots(self) -> None:
        for _, path in list_snapshots(self.data_dir)[self.keep_snapshots:]:
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush + fsync the WAL and detach (idempotent).

        With ``checkpoint_on_close`` a final checkpoint is cut first,
        so a clean shutdown restarts from a snapshot instead of a full
        replay.
        """
        if self.wal is None:
            return
        if (
            self.checkpoint_on_close
            and self.database is not None
            and self.database.last_lsn > self.last_snapshot_lsn
        ):
            try:
                self.checkpoint()
            except OSError:
                # Shutdown must complete even on a full disk; the WAL
                # still holds everything the checkpoint would have.
                pass
        self.wal.close()
        if self.database is not None and getattr(self.database, "wal", None) is self.wal:
            self.database.wal = None
        self.wal = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``persist`` block of STATS / the Prometheus page."""
        stats: Dict[str, Any] = {
            "data_dir": self.data_dir,
            "snapshot": {
                "checkpoints": self.checkpoints,
                "truncated_segments": self.truncated_segments,
                "last_lsn": self.last_snapshot_lsn,
                "last_seconds": self.last_snapshot_s,
            },
        }
        if self.wal is not None:
            stats["wal"] = self.wal.stats()
        if self.recovery_seconds is not None:
            stats["recovery_seconds"] = self.recovery_seconds
        if self.recovery is not None:
            stats["recovery"] = {
                "replayed": self.recovery.replayed,
                "snapshot_lsn": self.recovery.snapshot_lsn,
                "torn_tail": self.recovery.torn_tail is not None,
            }
        return stats

    def __repr__(self) -> str:
        return (
            f"PersistenceManager({self.data_dir!r}, "
            f"lsn={self.wal.last_lsn if self.wal else 0})"
        )

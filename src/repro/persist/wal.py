"""The write-ahead fact log: append-only JSONL segments, CRC32, LSNs.

Every committed mutation becomes one JSON line in the current segment
file::

    {"crc": 2814763520, "lsn": 42, "op": "fact", "name": "edge",
     "row": ["1", "2"]}

``lsn`` is a monotonically increasing log sequence number (no gaps,
ever — a gap on read means a lost segment).  ``crc`` is the CRC32 of
the record's canonical JSON (sorted keys, no whitespace) *without* the
``crc`` field, so any flipped bit anywhere in the line — payload, LSN,
or the checksum itself — fails verification.  Segments are named by
the LSN of their first record (``wal-%020d.jsonl``) so the reader can
order them, detect truncation-created gaps, and report the expected
LSN of a damaged record even when the damage ate the LSN field.

Durability discipline: :meth:`WriteAheadLog.append` always pushes the
line through the userspace buffer into the OS page cache (``flush``)
before returning, so a SIGKILL after an acknowledged mutation never
loses it; whether the *kernel* buffer also reaches the platter before
the ack is the pluggable fsync policy (``always`` / ``interval`` /
``off``) — the classic durability-vs-latency trade
(:doc:`/docs/durability` has the measured tax).

Read-side contract (:func:`scan_wal`): a damaged record at the very
tail of the last segment is the one buffer a crash may legitimately
tear — it is dropped and reported, never loaded.  Damage anywhere
*before* intact records raises :class:`WalCorruptionError` carrying
the bad LSN: recovery must fail loudly rather than resurrect a state
no client was ever acknowledged.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FSYNC_POLICIES",
    "WalCorruptionError",
    "WriteAheadLog",
    "canonical_record_bytes",
    "list_segments",
    "record_crc",
    "scan_wal",
    "truncate_torn_tail",
]

#: Accepted values for the ``fsync`` policy knob.
FSYNC_POLICIES = ("always", "interval", "off")

_SEGMENT_RE = re.compile(r"^wal-(\d{20})\.jsonl$")


def _segment_name(first_lsn: int) -> str:
    return f"wal-{first_lsn:020d}.jsonl"


def segment_first_lsn(path: str) -> int:
    """The LSN of a segment's first record, from its filename."""
    match = _SEGMENT_RE.match(os.path.basename(path))
    if match is None:
        raise ValueError(f"{path}: not a WAL segment filename")
    return int(match.group(1))


def list_segments(directory: str) -> List[str]:
    """WAL segment paths under ``directory``, in LSN order."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    segments = [name for name in names if _SEGMENT_RE.match(name)]
    segments.sort()  # zero-padded LSNs: lexicographic == numeric
    return [os.path.join(directory, name) for name in segments]


def canonical_record_bytes(record: Dict[str, Any]) -> bytes:
    """The record as canonical JSON — the bytes the CRC covers."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def record_crc(record: Dict[str, Any]) -> int:
    """CRC32 over the canonical record bytes (sans ``crc`` itself)."""
    return zlib.crc32(canonical_record_bytes(record)) & 0xFFFFFFFF


class WalCorruptionError(RuntimeError):
    """Mid-stream WAL damage: the log cannot be loaded safely.

    ``lsn`` is the sequence number the damaged record was expected to
    carry (derived from the last intact record, or the segment's
    filename when the damage hit the segment head) — the handle an
    operator needs to decide what acknowledged suffix is at risk.
    """

    def __init__(self, path: str, lsn: int, reason: str):
        self.path = path
        self.lsn = lsn
        self.reason = reason
        super().__init__(f"{path}: WAL corrupt at lsn {lsn}: {reason}")


def _check_line(raw: bytes) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Parse + verify one line; ``(record, None)`` or ``(None, why)``."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None, "unparsable JSON (torn write?)"
    if not isinstance(obj, dict):
        return None, "record is not a JSON object"
    crc = obj.pop("crc", None)
    if not isinstance(crc, int):
        return None, "record has no integer crc field"
    actual = record_crc(obj)
    if actual != crc:
        return None, f"crc mismatch (stored {crc}, computed {actual})"
    lsn = obj.get("lsn")
    if not isinstance(lsn, int) or lsn <= 0:
        return None, f"record has invalid lsn {lsn!r}"
    return obj, None


def scan_wal(
    directory: str,
    after_lsn: int = 0,
    strict: bool = False,
) -> Tuple[List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Read every verified record with ``lsn > after_lsn``.

    Returns ``(records, torn)``: the records in LSN order (each still
    carrying its ``lsn`` key) and, when the final record of the final
    segment failed verification, a ``{"path", "lsn", "reason"}`` dict
    describing the tolerated torn tail (``None`` when the log ended
    cleanly).  With ``strict=True`` even a torn tail raises — the
    ``repro recover --verify`` mode, where "probably just a crash"
    is not an acceptable answer.

    Raises :class:`WalCorruptionError` for damage with intact records
    after it, an LSN gap, or a non-monotonic LSN.
    """
    records: List[Dict[str, Any]] = []
    previous_lsn: Optional[int] = None
    segments = list_segments(directory)
    for seg_index, path in enumerate(segments):
        with open(path, "rb") as handle:
            data = handle.read()
        lines = [
            (line_index, raw)
            for line_index, raw in enumerate(data.split(b"\n"), 1)
            if raw.strip()
        ]
        last_segment = seg_index == len(segments) - 1
        for pos, (line_index, raw) in enumerate(lines):
            record, damage = _check_line(raw)
            if damage is not None:
                expected = (
                    previous_lsn + 1
                    if previous_lsn is not None
                    else segment_first_lsn(path)
                )
                at_tail = last_segment and pos == len(lines) - 1
                if at_tail and not strict:
                    return records, {
                        "path": path,
                        "line": line_index,
                        "lsn": expected,
                        "reason": damage,
                    }
                raise WalCorruptionError(path, expected, damage)
            lsn = record["lsn"]
            if previous_lsn is not None and lsn != previous_lsn + 1:
                raise WalCorruptionError(
                    path,
                    previous_lsn + 1,
                    f"LSN gap: expected {previous_lsn + 1}, found {lsn}",
                )
            if previous_lsn is None and pos == 0:
                named = segment_first_lsn(path)
                if lsn != named:
                    raise WalCorruptionError(
                        path,
                        named,
                        f"segment named for lsn {named} starts at {lsn}",
                    )
            previous_lsn = lsn
            if lsn > after_lsn:
                records.append(record)
    return records, None


def truncate_torn_tail(torn: Dict[str, Any]) -> None:
    """Cut a tolerated torn record out of its segment before reuse.

    Run by recovery after :func:`scan_wal` reports a torn tail: the
    damaged bytes are truncated away (or the segment deleted when
    nothing verified precedes them) so a restarted writer can never
    collide with a half-written segment name, and a second crash-free
    scan sees a clean log.  In-place ``truncate`` is crash-safe here —
    interrupting it leaves a shorter (or identical) torn tail, which
    the next recovery tolerates again.
    """
    path = torn["path"]
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    keep = sum(len(line) + 1 for line in lines[: torn["line"] - 1])
    if keep == 0:
        os.remove(path)
        return
    with open(path, "r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())


class WriteAheadLog:
    """Appender over a directory of JSONL WAL segments.

    Not thread-safe by itself — the serving layer already serializes
    mutations under the session lock, and the :class:`Database` calls
    :meth:`append` from inside that critical section.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        segment_bytes: int = 4 * 1024 * 1024,
        start_lsn: int = 0,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.fsync_policy = fsync
        self.fsync_interval_s = fsync_interval_s
        self.segment_bytes = segment_bytes
        self.last_lsn = start_lsn
        #: Monotonic stamp of the last fsync (``interval`` policy).
        self._last_fsync = time.monotonic()
        self._handle = None
        self._segment_size = 0
        self._synced = True
        # Counters for /metrics (repro_wal_*).
        self.records = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, payload: Dict[str, Any]) -> int:
        """Durably append one mutation record; returns its LSN.

        A fresh segment is always started on the first append after
        open — never appending into a file that may end in a torn
        record keeps the "only the final record of the final segment
        may be damaged" read-side invariant trivially true.
        """
        lsn = self.last_lsn + 1
        record = {"lsn": lsn, **payload}
        record["crc"] = record_crc(record)
        line = canonical_record_bytes(record) + b"\n"
        if self._handle is None or self._segment_size >= self.segment_bytes:
            self._rotate(lsn)
        self._handle.write(line)
        # Out of the userspace buffer on every append: a SIGKILL after
        # the ack must not lose the record (fsync only decides whether
        # it also survives power loss).
        self._handle.flush()
        self._synced = False
        self._segment_size += len(line)
        self.last_lsn = lsn
        self.records += 1
        self.bytes_written += len(line)
        if self.fsync_policy == "always":
            self.sync()
        elif self.fsync_policy == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval_s:
                self.sync()
        return lsn

    def _rotate(self, first_lsn: int) -> None:
        """Close the current segment and open ``wal-<first_lsn>``."""
        if self._handle is not None:
            self._close_handle()
            self.rotations += 1
        path = os.path.join(self.directory, _segment_name(first_lsn))
        # "x" catches the impossible double-open of one LSN range early
        # instead of silently interleaving two writers.  One legitimate
        # survivor is tolerated: a kill between segment creation and
        # the first record's write leaves an *empty* file under exactly
        # this name (the mid-rotation crash window), which is safe to
        # adopt.
        try:
            self._handle = open(path, "xb")
        except FileExistsError:
            if os.path.getsize(path) != 0:
                raise
            self._handle = open(path, "ab")
        self._segment_size = 0

    def sync(self) -> None:
        """fsync the current segment (no-op when already clean)."""
        if self._handle is None or self._synced:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._synced = True
        self.fsyncs += 1
        self._last_fsync = time.monotonic()

    def _close_handle(self) -> None:
        handle, self._handle = self._handle, None
        handle.flush()
        os.fsync(handle.fileno())
        self.fsyncs += 1
        handle.close()
        self._synced = True

    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        if self._handle is not None:
            self._close_handle()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def segments(self) -> List[str]:
        return list_segments(self.directory)

    def truncate_through(self, lsn: int) -> int:
        """Delete segments whose records are all covered by ``lsn``.

        A segment is removable when the *next* segment starts at or
        before ``lsn + 1`` (so every record it holds is ``<= lsn``);
        the newest segment always survives — it is either active or
        the only carrier of the tail.  Returns the number deleted.
        """
        segments = self.segments()
        removed = 0
        for path, next_path in zip(segments, segments[1:]):
            if segment_first_lsn(next_path) <= lsn + 1:
                os.remove(path)
                removed += 1
            else:
                break
        return removed

    def stats(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "bytes": self.bytes_written,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "segments": len(self.segments()),
            "last_lsn": self.last_lsn,
            "fsync_policy": self.fsync_policy,
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, lsn={self.last_lsn}, "
            f"fsync={self.fsync_policy!r})"
        )

"""The EDB snapshot codec: one format for capture and durability.

Workload-capture archive headers (:mod:`repro.observe.capture`) and
durability checkpoints (:mod:`repro.persist.manager`) both need the
whole database as data; this module is the single implementation both
ride, so the two can never drift in format.  The codec renders rules
and facts as *parseable datalog text* — term rendering round-trips
through the parser (``str(Const('"x"'))`` keeps its quotes, infix
arithmetic is re-parenthesized), so a restore rebuilds bit-identical
state by re-parsing — and pins every version counter
(``edb_version``/``idb_version`` and the per-relation counters), so
version-stamped reply envelopes stay coherent across a capture replay
*or* a crash-recovery restart.

On top of the dict codec sit the checkpoint-file helpers: a snapshot
on disk is one JSON document wrapping the codec dict with the LSN it
covers and a sha256 over the canonical payload bytes.  Checkpoints
are written to a temp name and atomically renamed, so a kill mid-write
can leave garbage only under a name recovery never considers.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotCorruptionError",
    "load_snapshot_file",
    "restore_database",
    "snapshot_database",
    "write_snapshot_file",
]

#: Bump when the checkpoint file schema changes; recovery refuses
#: unknown versions instead of misreading them.
SNAPSHOT_VERSION = 1


class SnapshotCorruptionError(RuntimeError):
    """A checkpoint file that fails structural or sha256 verification."""

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"{path}: snapshot corrupt: {reason}")


# ----------------------------------------------------------------------
# The dict codec (shared with workload capture)
# ----------------------------------------------------------------------
def snapshot_database(database) -> Dict[str, Any]:
    """The database as parseable text: rules plus per-relation rows.

    Callers must hold whatever lock guards the database against
    concurrent mutation.
    """
    facts: Dict[str, List[List[str]]] = {}
    for predicate, relation in sorted(
        database.relations.items(), key=lambda kv: str(kv[0])
    ):
        facts[f"{predicate.name}/{predicate.arity}"] = sorted(
            [str(value) for value in row] for row in relation.rows()
        )
    return {
        "rules": [str(rule) for rule in database.program],
        "facts": facts,
        "edb_version": database.edb_version,
        "idb_version": database.idb_version,
        "relation_versions": {
            f"{predicate.name}/{predicate.arity}": version
            for predicate, version in sorted(
                database.relation_versions.items(), key=lambda kv: str(kv[0])
            )
        },
    }


def restore_database(snapshot: Dict[str, Any]):
    """A fresh :class:`~repro.engine.database.Database` from a snapshot."""
    from ..datalog.literals import Predicate
    from ..datalog.parser import parse_rule
    from ..engine.database import Database

    database = Database()
    for text in snapshot.get("rules", ()):
        database.add_rule(parse_rule(text))
    for spec, rows in (snapshot.get("facts") or {}).items():
        name, _, arity = spec.rpartition("/")
        # Materialize the relation even when it has no surviving rows:
        # an emptied-by-retraction relation is still *declared*, and a
        # restore that dropped it would change edb_predicates().
        database.relation(name, int(arity))
        for row in rows:
            if row:
                clause = f"{name}({', '.join(row)})."
            else:
                clause = f"{name}."
            rule = parse_rule(clause)
            database.add_fact(rule.head.name, rule.head.args)
    # Pin the version counters to the captured values: FACT/RETRACT
    # replies embed version stamps, and both exact-digest replay parity
    # and post-restart envelope coherence need the counters to continue
    # from the recorded baseline, not from however many mutations the
    # rebuild above happened to make.
    if "edb_version" in snapshot:
        database.edb_version = snapshot["edb_version"]
    if "idb_version" in snapshot:
        database.idb_version = snapshot["idb_version"]
    for spec, version in (snapshot.get("relation_versions") or {}).items():
        name, _, arity = spec.rpartition("/")
        database.relation_versions[Predicate(name, int(arity))] = version
    return database


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
def _payload_digest(lsn: int, snapshot: Dict[str, Any]) -> str:
    body = json.dumps(
        {"lsn": lsn, "snapshot": snapshot},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(body).hexdigest()


def write_snapshot_file(path: str, lsn: int, snapshot: Dict[str, Any]) -> None:
    """Atomically persist one checkpoint covering the WAL up to ``lsn``.

    temp-write + fsync + rename + directory fsync: a crash at any point
    leaves either the previous checkpoint set intact or the new file
    fully in place — never a half-written file under a live name.
    """
    document = {
        "kind": "repro-snapshot",
        "version": SNAPSHOT_VERSION,
        "lsn": lsn,
        "sha256": _payload_digest(lsn, snapshot),
        "snapshot": snapshot,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    directory_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def load_snapshot_file(path: str) -> Dict[str, Any]:
    """Parse + verify one checkpoint; ``{"lsn", "snapshot"}`` on success.

    Raises :class:`SnapshotCorruptionError` on a torn write, a foreign
    file, an unsupported version, or a sha256 mismatch — recovery then
    falls back to the next-older checkpoint rather than loading it.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotCorruptionError(path, f"unreadable: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != "repro-snapshot":
        raise SnapshotCorruptionError(path, "not a repro snapshot file")
    if document.get("version") != SNAPSHOT_VERSION:
        raise SnapshotCorruptionError(
            path, f"unsupported snapshot version {document.get('version')!r}"
        )
    lsn = document.get("lsn")
    snapshot = document.get("snapshot")
    if not isinstance(lsn, int) or not isinstance(snapshot, dict):
        raise SnapshotCorruptionError(path, "malformed snapshot document")
    digest = _payload_digest(lsn, snapshot)
    if digest != document.get("sha256"):
        raise SnapshotCorruptionError(
            path,
            f"sha256 mismatch (stored {document.get('sha256')!r}, "
            f"computed {digest!r})",
        )
    return {"lsn": lsn, "snapshot": snapshot}

"""Durability: write-ahead fact log, snapshot checkpoints, recovery.

The engine's state — EDB facts, IDB rules, the version counters every
cache and client-visible envelope is stamped with — lives in one
process.  This package makes it survive that process: every committed
mutation is appended to a write-ahead log (:mod:`repro.persist.wal`)
*before* the caller sees an acknowledgement, periodic checkpoints
(:mod:`repro.persist.manager`) snapshot the whole database with the
same parser-round-trip codec workload capture uses
(:mod:`repro.persist.snapshot`), and startup recovery restores the
latest valid snapshot and replays the WAL tail past it — tolerating a
torn final record, refusing (loudly, with the bad LSN) anything worse.
"""

from .manager import (
    PersistenceManager,
    RecoveryError,
    RecoveryInfo,
    list_snapshots,
    recover_database,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotCorruptionError,
    load_snapshot_file,
    restore_database,
    snapshot_database,
    write_snapshot_file,
)
from .wal import (
    FSYNC_POLICIES,
    WalCorruptionError,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "FSYNC_POLICIES",
    "PersistenceManager",
    "RecoveryError",
    "RecoveryInfo",
    "SNAPSHOT_VERSION",
    "SnapshotCorruptionError",
    "WalCorruptionError",
    "WriteAheadLog",
    "list_snapshots",
    "load_snapshot_file",
    "recover_database",
    "restore_database",
    "scan_wal",
    "snapshot_database",
    "write_snapshot_file",
]

"""The chain-split cost model: join expansion ratios and thresholds.

§2.1 of the paper distinguishes *strong* linkages (small join expansion
ratio — following them keeps the frontier small) from *weak* linkages
(large ratio — following them explodes the frontier, e.g. binding a
person's country to *everyone born in that country* in ``scsg``).
Algorithm 3.1 modifies magic-set binding propagation with two
thresholds:

* ratio >= ``split_threshold``  → never propagate (chain-split);
* ratio <= ``follow_threshold`` → always propagate (chain-follow);
* in between → a quantitative comparison of the two plans' estimated
  work (the paper defers the details to System-R-style estimation,
  ref [13, 18]; we estimate with frontier x ratio x depth versus a
  one-shot scan of the delayed relation).

Evaluable functional predicates (builtins) expand 1:1 — a bound-mode
``cons`` or ``sum`` produces exactly one solution — while a
non-evaluable occurrence has an *infinite* ratio, which is how the
efficiency-based and the finiteness-based split criteria unify: an
infinite expansion ratio is precisely "not finitely evaluable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import term_variables
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.database import Database
from ..engine.statistics import CatalogStatistics
from .chains import ChainPath
from .finiteness import PathSplit, bound_positions

__all__ = ["LinkageDecision", "CostModel"]

INFINITY = float("inf")


@dataclass
class LinkageDecision:
    """Outcome of the modified binding-propagation rule for one literal."""

    literal: Literal
    ratio: float
    propagate: bool
    reason: str
    #: Argument positions bound when the decision was taken — the
    #: adornment the predicted ratio refers to.  Observed ratios are
    #: only comparable to :attr:`ratio` under this same adornment
    #: (``observe.report`` keys its comparison on it).
    bound_positions: Tuple[int, ...] = ()

    def __str__(self) -> str:
        verdict = "follow" if self.propagate else "split"
        return f"{verdict} {self.literal} (ratio={self.ratio:.3g}; {self.reason})"


class CostModel:
    """Join-expansion-ratio based propagation decisions (Alg. 3.1)."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        split_threshold: float = 4.0,
        follow_threshold: float = 1.5,
        depth_estimate: int = 8,
        frontier_estimate: int = 1,
    ):
        if follow_threshold > split_threshold:
            raise ValueError("follow_threshold must not exceed split_threshold")
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.statistics = CatalogStatistics(database)
        self.split_threshold = split_threshold
        self.follow_threshold = follow_threshold
        self.depth_estimate = depth_estimate
        self.frontier_estimate = frontier_estimate

    # ------------------------------------------------------------------
    # Expansion ratios
    # ------------------------------------------------------------------
    def literal_expansion(self, literal: Literal, bound_vars: Set[str]) -> float:
        """Join expansion ratio of pushing the current bindings through
        ``literal``: expected number of result bindings per input
        binding."""
        bound = bound_positions(literal, bound_vars)
        free = [i for i in range(literal.arity) if i not in bound]
        builtin = self.registry.get(literal.predicate)
        if builtin is not None:
            # Functional predicates: single-valued when evaluable,
            # infinite otherwise.
            return 1.0 if builtin.is_finite_under(bound) else INFINITY
        if not free:
            # Pure filter: never expands.
            return 1.0
        stats = self.statistics.for_predicate(literal.predicate)
        if stats is None:
            # IDB literal: unknown; assume neutral expansion so the
            # analysis neither forces nor forbids a split.
            return 1.0
        return stats.fanout(sorted(bound), free)

    def positional_expansion(
        self, predicate: Predicate, bound: Iterable[int]
    ) -> Optional[float]:
        """Predicted expansion ratio for probing ``predicate`` with the
        given argument *positions* bound — the positional twin of
        :meth:`literal_expansion`, keyed the same way observed traces
        are aggregated.  ``None`` when no statistics exist (derived
        predicates, magic/supplementary relations): the model has no
        prediction there at all, which is different from predicting 1.
        """
        bound_set = frozenset(bound)
        free = [i for i in range(predicate.arity) if i not in bound_set]
        builtin = self.registry.get(predicate)
        if builtin is not None:
            return 1.0 if builtin.is_finite_under(bound_set) else INFINITY
        if not free:
            return 1.0
        stats = self.statistics.for_predicate(predicate)
        if stats is None:
            return None
        return stats.fanout(sorted(bound_set), free)

    def ratio_verdict(self, ratio: Optional[float]) -> Optional[str]:
        """Classify an expansion ratio against the two thresholds:
        ``"split"`` / ``"follow"`` / ``"gray"`` (``None`` passes
        through).  Applied to observed ratios this is the lens the
        EXPLAIN report uses to second-guess the planner."""
        if ratio is None:
            return None
        if ratio >= self.split_threshold:
            return "split"
        if ratio <= self.follow_threshold:
            return "follow"
        return "gray"

    # ------------------------------------------------------------------
    # The modified binding-propagation rule
    # ------------------------------------------------------------------
    def decide(self, literal: Literal, bound_vars: Set[str]) -> LinkageDecision:
        """Apply Algorithm 3.1's three-way rule to one linkage."""
        ratio = self.literal_expansion(literal, bound_vars)
        adornment = tuple(sorted(bound_positions(literal, bound_vars)))
        if ratio == INFINITY:
            return LinkageDecision(
                literal, ratio, False,
                "not finitely evaluable under current bindings", adornment,
            )
        if not adornment:
            # No linkage at all: nothing to propagate *through*; the
            # literal would be a cross product.  Never follow.
            return LinkageDecision(
                literal, ratio, False,
                "no bound argument — cross-product linkage", adornment,
            )
        if ratio >= self.split_threshold:
            return LinkageDecision(
                literal, ratio, False,
                f"ratio >= split threshold {self.split_threshold}", adornment,
            )
        if ratio <= self.follow_threshold:
            return LinkageDecision(
                literal, ratio, True,
                f"ratio <= follow threshold {self.follow_threshold}", adornment,
            )
        return self._quantitative(literal, ratio, adornment)

    def _quantitative(
        self, literal: Literal, ratio: float, adornment: Tuple[int, ...] = ()
    ) -> LinkageDecision:
        """Gray-zone comparison: estimated frontier work if we follow
        the linkage for ``depth_estimate`` iterations versus scanning
        the delayed relation once per iteration."""
        stats = self.statistics.for_predicate(literal.predicate)
        cardinality = stats.cardinality if stats is not None else 1
        follow_work = 0.0
        frontier = float(self.frontier_estimate)
        for _ in range(self.depth_estimate):
            frontier *= ratio
            follow_work += frontier
        split_work = float(cardinality) * self.depth_estimate
        if follow_work <= split_work:
            return LinkageDecision(
                literal,
                ratio,
                True,
                f"quantitative: follow work {follow_work:.3g} <= "
                f"split work {split_work:.3g}",
                adornment,
            )
        return LinkageDecision(
            literal,
            ratio,
            False,
            f"quantitative: follow work {follow_work:.3g} > "
            f"split work {split_work:.3g}",
            adornment,
        )

    # ------------------------------------------------------------------
    # Whole-path split (efficiency-based, §2.1)
    # ------------------------------------------------------------------
    def efficiency_split(
        self,
        path: ChainPath,
        entry_bound: Iterable[str],
    ) -> Tuple[PathSplit, List[LinkageDecision]]:
        """Partition a chain generating path by repeatedly applying the
        modified propagation rule: literals the rule follows become the
        evaluable portion, the rest the delayed portion.

        Greedy like the finiteness split: at each step every remaining
        literal that touches a bound variable is considered and the one
        with the smallest ratio is followed if the rule says follow.
        """
        bound = set(entry_bound)
        remaining = list(path.literals)
        evaluable: List[Literal] = []
        decisions: List[LinkageDecision] = []
        progress = True
        while remaining and progress:
            progress = False
            candidates = sorted(
                range(len(remaining)),
                key=lambda i: self.literal_expansion(remaining[i], bound),
            )
            for index in candidates:
                literal = remaining[index]
                decision = self.decide(literal, bound)
                if decision.propagate:
                    decisions.append(decision)
                    evaluable.append(literal)
                    bound |= {v.name for v in literal.variables()}
                    del remaining[index]
                    progress = True
                    break
                # Record the (negative) decision only once the loop
                # settles, to avoid duplicates while bindings grow.
            if not progress:
                for literal in remaining:
                    decisions.append(self.decide(literal, bound))
        delayed = remaining
        delayed_vars: Set[str] = set()
        for literal in delayed:
            delayed_vars |= {v.name for v in literal.variables()}
        buffered = sorted(delayed_vars & bound)
        return PathSplit(evaluable, delayed, buffered), decisions

"""Chain compilation: from normalized linear recursions to chain
generating paths.

A compiled n-chain recursion (paper eq. 1.4) is a normalized linear
recursive rule

    p(X...) :- c1(...), ..., cn(...), p(Y...).

whose non-recursive body literals partition into *chain generating
paths*: maximal groups of literals connected through shared variables.
Each path links a subset of the head variables to a subset of the
recursive-call variables; one iteration of the recursion applies every
path once.

This module also classifies recursions the way §4 of the paper does:
``linear`` (one recursive literal), ``nested linear`` (linear, but some
other predicate in the body is itself recursive — ``isort``/``insert``)
and ``nonlinear`` (several recursive literals — ``qsort``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term, Var
from ..engine.builtins import BuiltinRegistry, default_registry

__all__ = [
    "ChainPath",
    "CompiledRecursion",
    "CompilationError",
    "compile_recursion",
    "classify_recursion",
    "is_bounded_recursion",
    "RecursionClass",
]


class CompilationError(ValueError):
    """The recursion does not have the required (normalized linear)
    shape for chain compilation."""


class RecursionClass:
    """Symbolic recursion classes (paper §1, §4)."""

    NON_RECURSIVE = "non_recursive"
    LINEAR = "linear"
    NESTED_LINEAR = "nested_linear"
    NONLINEAR = "nonlinear"
    MUTUAL = "mutual"


class ChainPath:
    """One chain generating path of a compiled recursion.

    Attributes
    ----------
    literals:
        The path's literals in original body order.
    variables:
        All variable names occurring in the path.
    head_positions / rec_positions:
        Indexes of head-literal / recursive-literal arguments whose
        variable belongs to this path — the path's entry and exit
        interface.
    """

    def __init__(
        self,
        literals: Sequence[Literal],
        head_positions: Sequence[int],
        rec_positions: Sequence[int],
        variables: Set[str],
    ):
        self.literals = list(literals)
        self.head_positions = tuple(head_positions)
        self.rec_positions = tuple(rec_positions)
        self.variables = set(variables)

    def connects(self) -> bool:
        """True when the path links head to recursive call — i.e. it
        *generates* the chain rather than being a floating filter."""
        return bool(self.head_positions) and bool(self.rec_positions)

    def __repr__(self) -> str:
        lits = ", ".join(str(l) for l in self.literals)
        return (
            f"ChainPath([{lits}], head={self.head_positions}, "
            f"rec={self.rec_positions})"
        )


class CompiledRecursion:
    """A compiled (normalized) linear recursion and its chain paths."""

    def __init__(
        self,
        predicate: Predicate,
        recursive_rule: Rule,
        exit_rules: Sequence[Rule],
        rec_index: int,
        chains: Sequence[ChainPath],
    ):
        self.predicate = predicate
        self.recursive_rule = recursive_rule
        self.exit_rules = list(exit_rules)
        self.rec_index = rec_index
        self.chains = list(chains)

    @property
    def recursive_literal(self) -> Literal:
        return self.recursive_rule.body[self.rec_index]

    @property
    def head_args(self) -> Tuple[Term, ...]:
        return self.recursive_rule.head.args

    @property
    def rec_args(self) -> Tuple[Term, ...]:
        return self.recursive_literal.args

    @property
    def chain_count(self) -> int:
        """Number of chain generating paths (the *n* of n-chain)."""
        return sum(1 for chain in self.chains if chain.connects())

    def is_single_chain(self) -> bool:
        return self.chain_count == 1

    def generating_chains(self) -> List[ChainPath]:
        return [chain for chain in self.chains if chain.connects()]

    def __repr__(self) -> str:
        return (
            f"CompiledRecursion({self.predicate}, {self.chain_count} chain(s), "
            f"{len(self.exit_rules)} exit rule(s))"
        )


def _variable_names(literal: Literal) -> Set[str]:
    return {var.name for var in literal.variables()}


def compile_recursion(
    program: Program,
    predicate: Predicate,
    registry: Optional[BuiltinRegistry] = None,
) -> CompiledRecursion:
    """Compile the (already rectified) definition of ``predicate``.

    Requirements: exactly one recursive rule, in which ``predicate``
    occurs exactly once positively; any number of exit rules.  Raises
    :class:`CompilationError` otherwise.
    """
    registry = registry if registry is not None else default_registry()
    rules = program.rules_for(predicate)
    if not rules:
        raise CompilationError(f"no rules define {predicate}")
    recursive_rules = [r for r in rules if r.is_recursive_on(predicate)]
    exit_rules = [r for r in rules if not r.is_recursive_on(predicate)]
    if len(recursive_rules) != 1:
        raise CompilationError(
            f"{predicate} has {len(recursive_rules)} recursive rules; "
            "chain compilation requires exactly one (a linear recursion)"
        )
    rule = recursive_rules[0]
    rec_indexes = [
        i
        for i, lit in enumerate(rule.body)
        if lit.predicate == predicate and not lit.negated
    ]
    if len(rec_indexes) != 1:
        raise CompilationError(
            f"recursive rule of {predicate} is nonlinear "
            f"({len(rec_indexes)} recursive literals)"
        )
    rec_index = rec_indexes[0]

    head_vars = _variable_names(rule.head)
    rec_vars = _variable_names(rule.body[rec_index])
    others = [
        (i, lit) for i, lit in enumerate(rule.body) if i != rec_index
    ]

    # Union-find over body literals by shared variables.
    parent: Dict[int, int] = {i: i for i, _ in others}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    var_home: Dict[str, int] = {}
    for i, lit in others:
        for name in _variable_names(lit):
            if name in var_home:
                union(i, var_home[name])
            else:
                var_home[name] = i

    groups: Dict[int, List[Tuple[int, Literal]]] = {}
    for i, lit in others:
        groups.setdefault(find(i), []).append((i, lit))

    chains: List[ChainPath] = []
    for members in groups.values():
        members.sort(key=lambda pair: pair[0])
        literals = [lit for _, lit in members]
        variables: Set[str] = set()
        for lit in literals:
            variables |= _variable_names(lit)
        head_positions = [
            pos
            for pos, arg in enumerate(rule.head.args)
            if isinstance(arg, Var) and arg.name in variables
        ]
        rec_positions = [
            pos
            for pos, arg in enumerate(rule.body[rec_index].args)
            if isinstance(arg, Var) and arg.name in variables
        ]
        chains.append(ChainPath(literals, head_positions, rec_positions, variables))

    # Stable order: by first literal's position in the body.
    chains.sort(key=lambda c: rule.body.index(c.literals[0]) if c.literals else 0)
    return CompiledRecursion(predicate, rule, exit_rules, rec_index, chains)


def is_bounded_recursion(compiled: CompiledRecursion) -> bool:
    """Detect the paper's *bounded* compilation outcome (a sound
    special case).

    A linear recursion is bounded — equivalent to a nonrecursive rule
    set, with the semi-naive fixpoint converging in a constant number
    of rounds — when its recursive rule passes no information between
    the head and the recursive call: no chain generating path connects
    them and they share no variables.  The recursive literal then only
    contributes the monotone condition "some p-fact with these
    properties exists", which flips at most once.

    (This is a sufficient condition; deciding boundedness in general
    is undecidable.)
    """
    if compiled.chain_count > 0:
        return False
    head_vars = {
        v.name for v in compiled.recursive_rule.head.variables()
    }
    rec_vars = {v.name for v in compiled.recursive_literal.variables()}
    return not (head_vars & rec_vars)


def classify_recursion(
    program: Program, predicate: Predicate
) -> str:
    """Classify ``predicate``'s recursion (paper §1/§4 taxonomy)."""
    rules = program.rules_for(predicate)
    if not rules:
        raise CompilationError(f"no rules define {predicate}")

    recursive = program.recursive_predicates()
    if predicate not in recursive:
        return RecursionClass.NON_RECURSIVE

    # Mutual recursion: the predicate's cycle passes through another
    # predicate (no rule of `predicate` calls it directly, or a
    # dependency cycle involves >1 predicate).
    graph = program.dependency_graph()
    in_cycle_with_other = False
    for component in Program._strongly_connected_components(graph):
        if predicate in component and len(component) > 1:
            in_cycle_with_other = True
    if in_cycle_with_other:
        return RecursionClass.MUTUAL

    max_self_occurrences = 0
    for rule in rules:
        count = sum(
            1
            for lit in rule.body
            if lit.predicate == predicate and not lit.negated
        )
        max_self_occurrences = max(max_self_occurrences, count)
    if max_self_occurrences > 1:
        return RecursionClass.NONLINEAR

    # Linear; nested-linear when another recursive predicate occurs in
    # some body of this predicate's rules.
    for rule in rules:
        for lit in rule.body:
            if lit.predicate != predicate and lit.predicate in recursive:
                return RecursionClass.NESTED_LINEAR
    return RecursionClass.LINEAR

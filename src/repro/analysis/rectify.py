"""Rule rectification: eliminate function symbols and normalize heads.

The paper (following refs [12, 15, 17, 21]) analyses functional
recursions in a function-free framework by transforming every function
application ``V = f(X1, ..., Xk)`` into a *functional predicate* atom
``f(X1, ..., Xk, V)``.  Rectification performs two steps:

1. **Head normalization** — rewrite each rule so its head is
   ``p(V1, ..., Vn)`` with distinct fresh variables, moving structure
   into body equalities.
2. **Flattening** — replace every compound term in any literal argument
   by a fresh variable plus a functional-predicate literal producing
   it.  The list constructor ``'.'`` maps to ``cons`` and arithmetic
   operators to ``plus``/``minus``/``times``, matching the builtin
   registry; other functors ``f/k`` map to ``f/(k+1)``.

After rectification every literal argument is a variable or a constant,
which is the precondition for chain compilation and adornment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Const, Struct, Term, Var, fresh_variable_factory

__all__ = ["rectify_rule", "rectify_program", "FUNCTOR_PREDICATES", "is_rectified"]

#: Functor-to-functional-predicate renamings for the builtin functors.
FUNCTOR_PREDICATES: Dict[str, str] = {
    ".": "cons",
    "+": "plus",
    "-": "minus",
    "*": "times",
}


def _flatten_term(
    term: Term,
    out_literals: List[Literal],
    fresh: Callable[[], Var],
) -> Term:
    """Replace a compound term over a *known* functor by a fresh
    variable, emitting the functional-predicate literals that define it
    (innermost first).

    Uninterpreted functors (user constructors like ``move(From, To)``)
    have no evaluable functional predicate in the engine, so they stay
    inline — unification handles them directly; only their known
    sub-terms (lists, arithmetic) are flattened.
    """
    if not isinstance(term, Struct):
        return term
    flat_args = [_flatten_term(arg, out_literals, fresh) for arg in term.args]
    if term.functor not in FUNCTOR_PREDICATES:
        if tuple(flat_args) == term.args:
            return term
        return Struct(term.functor, flat_args)
    result_var = fresh()
    predicate_name = FUNCTOR_PREDICATES[term.functor]
    out_literals.append(Literal(predicate_name, (*flat_args, result_var)))
    return result_var


def rectify_rule(rule: Rule, fresh: Optional[Callable[[], Var]] = None) -> Rule:
    """Rectify one rule; see the module docstring for the contract.

    Idempotent: a rectified rule is returned unchanged (modulo object
    identity) because no argument is compound and heads pass through
    when they are already distinct variables.
    """
    if fresh is None:
        fresh = fresh_variable_factory("_F")

    new_body: List[Literal] = []

    # Head: force distinct variables.
    head_args: List[Term] = []
    seen_vars: Dict[str, int] = {}
    for arg in rule.head.args:
        if isinstance(arg, Var) and arg.name not in seen_vars:
            seen_vars[arg.name] = 1
            head_args.append(arg)
            continue
        fresh_var = fresh()
        head_args.append(fresh_var)
        if isinstance(arg, Struct):
            # Flatten the structure, then equate.
            literals: List[Literal] = []
            flattened = _flatten_term(arg, literals, fresh)
            if (
                isinstance(flattened, Var)
                and literals
                and literals[-1].args[-1] == flattened
            ):
                # The outermost constructor was a known functor: its
                # produced variable *is* the head variable — rename it
                # in the producing literal.
                last = literals[-1]
                new_args = (*last.args[:-1], fresh_var)
                literals[-1] = last.with_args(new_args)
                new_body.extend(literals)
            else:
                # Uninterpreted outermost functor: equate the head
                # variable with the (partially flattened) structure.
                new_body.extend(literals)
                new_body.append(Literal("=", (fresh_var, flattened)))
        else:
            new_body.append(Literal("=", (fresh_var, arg)))

    # Body: flatten compound arguments everywhere, including inside
    # (in)equality literals, except the right side of `is`, which the
    # builtin evaluates as an expression.
    for literal in rule.body:
        if literal.name == "is" and literal.arity == 2:
            new_body.append(literal)
            continue
        produced: List[Literal] = []
        flat_args = [_flatten_term(arg, produced, fresh) for arg in literal.args]
        new_body.extend(produced)
        new_body.append(literal.with_args(flat_args))

    return Rule(rule.head.with_args(head_args), new_body)


def rectify_program(program: Program) -> Program:
    """Rectify every rule, sharing one fresh-variable counter."""
    fresh = fresh_variable_factory("_F")
    return Program([rectify_rule(rule, fresh) for rule in program])


def is_rectified(rule: Rule) -> bool:
    """True when the head is distinct variables and no literal argument
    contains a *known* functor (lists/arithmetic) — uninterpreted
    constructor terms are allowed inline."""
    names = set()
    for arg in rule.head.args:
        if not isinstance(arg, Var) or arg.name in names:
            return False
        names.add(arg.name)
    for literal in rule.body:
        if literal.name == "is":
            continue
        for arg in literal.args:
            if _contains_known_functor(arg):
                return False
    return True


def _contains_known_functor(term) -> bool:
    if not isinstance(term, Struct):
        return False
    if term.functor in FUNCTOR_PREDICATES:
        return True
    return any(_contains_known_functor(arg) for arg in term.args)

"""Graphviz (DOT) export for programs, chains and proofs.

Visual debugging aids: the predicate dependency graph (recursive SCCs
highlighted), a compiled recursion's chain structure (evaluable vs
delayed portions), and proof trees.  Pure text generation — rendering
is left to the user's ``dot`` binary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..datalog.literals import Predicate
from ..datalog.rules import Program
from ..engine.proofs import ProofNode
from .chains import CompiledRecursion
from .finiteness import PathSplit

__all__ = ["program_to_dot", "chain_to_dot", "proof_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def program_to_dot(program: Program, name: str = "dependencies") -> str:
    """The predicate dependency graph.

    Recursive predicates are drawn as doubled ellipses; negative
    dependencies as dashed edges.
    """
    recursive = program.recursive_predicates()
    idb = program.idb_predicates()
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    nodes: Set[Predicate] = set(program.dependency_graph())
    for deps in program.dependency_graph().values():
        nodes |= deps
    for node in sorted(nodes, key=str):
        attributes = []
        if node in recursive:
            attributes.append("peripheries=2")
        if node not in idb:
            attributes.append("shape=box")
        attribute_text = (" [" + ", ".join(attributes) + "]") if attributes else ""
        lines.append(f'  "{_escape(str(node))}"{attribute_text};')
    seen_edges: Set[tuple] = set()
    for rule in program:
        head = str(rule.head.predicate)
        for literal in rule.body:
            edge = (head, str(literal.predicate), literal.negated)
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            style = " [style=dashed]" if literal.negated else ""
            lines.append(
                f'  "{_escape(head)}" -> "{_escape(str(literal.predicate))}"{style};'
            )
    lines.append("}")
    return "\n".join(lines)


def chain_to_dot(
    compiled: CompiledRecursion,
    split: Optional[PathSplit] = None,
    name: str = "chains",
) -> str:
    """A compiled recursion's chain generating paths.

    With a ``split``, the evaluable portion is filled green and the
    delayed portion orange — the picture of the paper's §2 figures.
    """
    evaluable = {str(l) for l in (split.evaluable if split else [])}
    delayed = {str(l) for l in (split.delayed if split else [])}
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    head = f"{compiled.predicate} (head)"
    recursive = f"{compiled.predicate} (recursive call)"
    lines.append(f'  "{_escape(head)}" [shape=ellipse];')
    lines.append(f'  "{_escape(recursive)}" [shape=ellipse];')
    for index, chain in enumerate(compiled.chains):
        for literal in chain.literals:
            label = str(literal)
            attributes = []
            if label in evaluable:
                attributes.append('fillcolor="palegreen", style=filled')
            elif label in delayed:
                attributes.append('fillcolor="orange", style=filled')
            attribute_text = (
                " [" + ", ".join(attributes) + "]" if attributes else ""
            )
            lines.append(f'  "{_escape(label)}"{attribute_text};')
        if chain.connects():
            first = str(chain.literals[0])
            last = str(chain.literals[-1])
            lines.append(f'  "{_escape(head)}" -> "{_escape(first)}";')
            lines.append(f'  "{_escape(last)}" -> "{_escape(recursive)}";')
            for a, b in zip(chain.literals, chain.literals[1:]):
                lines.append(
                    f'  "{_escape(str(a))}" -> "{_escape(str(b))}";'
                )
    lines.append("}")
    return "\n".join(lines)


def proof_to_dot(proof: ProofNode, name: str = "proof") -> str:
    """A proof tree as DOT (fact/builtin/negation leaves colored)."""
    lines = [f"digraph {name} {{", "  node [shape=box];"]
    counter = [0]

    def visit(node: ProofNode) -> str:
        node_id = f"n{counter[0]}"
        counter[0] += 1
        color = {
            "fact": "palegreen",
            "builtin": "lightblue",
            "negation": "lightgray",
        }.get(node.kind)
        fill = f', fillcolor="{color}", style=filled' if color else ""
        lines.append(
            f'  {node_id} [label="{_escape(str(node.goal))}"{fill}];'
        )
        for child in node.children:
            child_id = visit(child)
            lines.append(f"  {node_id} -> {child_id};")
        return node_id

    visit(proof)
    lines.append("}")
    return "\n".join(lines)

"""Finite evaluability analysis and finiteness-based chain-split (§2.2).

A chain generating path of a *functional* recursion may contain
functional predicates (``cons``, ``sum``) whose relations are infinite.
Whether an occurrence is finitely evaluable depends on the binding
state at evaluation time, which this module tracks with the paper's
``b``/``f`` adornments:

* a stored (EDB) predicate is finite under every adornment — the
  trivial finiteness constraint;
* a builtin is finite only under the modes its registry entry declares
  (``cons``: inputs bound or output bound; ``sum``: any two of three);
* an IDB predicate's finiteness is delegated to a caller-provided
  check (the planner recursively analyses nested recursions).

:func:`split_path` computes the chain-split itself: the maximal
immediately-evaluable prefix (greedily, in any safe order) and the
delayed-evaluation remainder, verifying the remainder becomes evaluable
once the recursive call has returned.  When even that fails, the query
is not finitely evaluable and :class:`NotFinitelyEvaluableError` is
raised — the paper's safety condition.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import Term, Var, term_variables
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.database import Database
from .chains import ChainPath, CompiledRecursion

__all__ = [
    "NotFinitelyEvaluableError",
    "PathSplit",
    "split_path",
    "is_immediately_evaluable",
    "adornment_of",
    "bound_positions",
]


class NotFinitelyEvaluableError(ValueError):
    """No evaluation order makes the query finite (paper §2.2)."""


def bound_positions(literal: Literal, bound_vars: Set[str]) -> FrozenSet[int]:
    """Argument positions of ``literal`` whose variables are all bound
    (constant arguments count as bound)."""
    positions = set()
    for i, arg in enumerate(literal.args):
        arg_vars = [v.name for v in term_variables(arg)]
        if all(name in bound_vars for name in arg_vars):
            positions.add(i)
    return frozenset(positions)


def adornment_of(literal: Literal, bound_vars: Set[str]) -> str:
    """The paper's adornment string (e.g. ``'bbf'``) of a literal under
    a set of bound variables."""
    bound = bound_positions(literal, bound_vars)
    return "".join("b" if i in bound else "f" for i in range(literal.arity))


class PathSplit:
    """The result of splitting a chain generating path.

    ``evaluable`` is the immediately evaluable portion in a safe
    evaluation order, ``delayed`` the delayed-evaluation portion (also
    safely ordered, for execution after the recursive call returns).
    ``buffered_vars`` are the variables produced by the evaluable
    portion (or bound at entry) that the delayed portion consumes —
    exactly the values Algorithm 3.2 buffers per iteration.
    """

    def __init__(
        self,
        evaluable: Sequence[Literal],
        delayed: Sequence[Literal],
        buffered_vars: Sequence[str],
    ):
        self.evaluable = list(evaluable)
        self.delayed = list(delayed)
        self.buffered_vars = list(buffered_vars)

    @property
    def needs_split(self) -> bool:
        return bool(self.delayed)

    def __repr__(self) -> str:
        ev = ", ".join(str(l) for l in self.evaluable)
        dl = ", ".join(str(l) for l in self.delayed)
        return (
            f"PathSplit(evaluable=[{ev}], delayed=[{dl}], "
            f"buffered={self.buffered_vars})"
        )


IdbFiniteCheck = Callable[[Literal, FrozenSet[int]], bool]


def _default_idb_check(literal: Literal, bound: FrozenSet[int]) -> bool:
    # Conservative default: an IDB call with at least one bound
    # argument is assumed finitely evaluable; the planner substitutes a
    # real recursive analysis.
    return bool(bound) or literal.arity == 0


def _is_evaluable(
    literal: Literal,
    bound_vars: Set[str],
    registry: BuiltinRegistry,
    database: Optional[Database],
    idb_finite: IdbFiniteCheck,
) -> bool:
    if literal.negated:
        return all(v.name in bound_vars for v in literal.variables())
    builtin = registry.get(literal.predicate)
    if builtin is not None:
        return builtin.is_finite_under(bound_positions(literal, bound_vars))
    if database is not None and database.get(literal.predicate) is not None:
        return True  # finite EDB relation
    if database is not None and database.finiteness_constraints:
        # User-declared finiteness constraints (ref [6]) for predicates
        # over infinite domains: evaluable when some constraint's
        # sources are bound and its targets cover every free position.
        declared = [
            c
            for c in database.finiteness_constraints
            if c.predicate == literal.predicate
        ]
        if declared:
            bound = bound_positions(literal, bound_vars)
            free = set(range(literal.arity)) - bound
            return any(
                constraint.sources <= bound and free <= constraint.targets
                for constraint in declared
            )
    if database is not None and literal.predicate in {
        r.head.predicate for r in database.program
    }:
        return idb_finite(literal, bound_positions(literal, bound_vars))
    # Unknown predicate: treat as a finite stored relation (it will be
    # empty at evaluation time).
    return True


def _greedy_order(
    literals: Sequence[Literal],
    bound_vars: Set[str],
    registry: BuiltinRegistry,
    database: Optional[Database],
    idb_finite: IdbFiniteCheck,
) -> Tuple[List[Literal], List[Literal], Set[str]]:
    """Order as many literals as possible; return (ordered, stuck,
    final bound set)."""
    remaining = list(literals)
    bound = set(bound_vars)
    ordered: List[Literal] = []
    progress = True
    while remaining and progress:
        progress = False
        for index, literal in enumerate(remaining):
            if _is_evaluable(literal, bound, registry, database, idb_finite):
                ordered.append(literal)
                bound |= {v.name for v in literal.variables()}
                del remaining[index]
                progress = True
                break
    return ordered, remaining, bound


def is_immediately_evaluable(
    path: ChainPath,
    entry_bound: Iterable[str],
    registry: Optional[BuiltinRegistry] = None,
    database: Optional[Database] = None,
    idb_finite: IdbFiniteCheck = _default_idb_check,
) -> bool:
    """True when the whole path can be evaluated without a split."""
    registry = registry if registry is not None else default_registry()
    _, stuck, _ = _greedy_order(
        path.literals, set(entry_bound), registry, database, idb_finite
    )
    return not stuck


def split_path(
    path: ChainPath,
    entry_bound: Iterable[str],
    rec_literal: Literal,
    registry: Optional[BuiltinRegistry] = None,
    database: Optional[Database] = None,
    idb_finite: IdbFiniteCheck = _default_idb_check,
) -> PathSplit:
    """Split ``path`` into evaluable + delayed portions (paper §2.2).

    ``entry_bound``: variable names bound when the iteration starts
    (query bindings propagated to the head).  ``rec_literal``: the
    recursive body literal; after the sub-recursion completes all its
    variables are bound, which is what makes the delayed portion
    evaluable.

    Raises :class:`NotFinitelyEvaluableError` when the delayed portion
    would still flounder after the recursive call returns.
    """
    registry = registry if registry is not None else default_registry()
    entry = set(entry_bound)

    evaluable, stuck, bound_after = _greedy_order(
        path.literals, entry, registry, database, idb_finite
    )
    if not stuck:
        return PathSplit(evaluable, [], [])

    # Delayed portion: must be evaluable once the recursive call has
    # bound all of its variables.
    bound_with_return = bound_after | {v.name for v in rec_literal.variables()}
    delayed_ordered, still_stuck, _ = _greedy_order(
        stuck, bound_with_return, registry, database, idb_finite
    )
    if still_stuck:
        stuck_str = ", ".join(str(l) for l in still_stuck)
        raise NotFinitelyEvaluableError(
            f"path portion not finitely evaluable even after the "
            f"recursive call returns: {stuck_str}"
        )

    delayed_vars: Set[str] = set()
    for literal in delayed_ordered:
        delayed_vars |= {v.name for v in literal.variables()}
    buffered = sorted(delayed_vars & bound_after)
    return PathSplit(evaluable, delayed_ordered, buffered)

"""Normalization: rectify a program and compile its recursions.

Convenience layer tying :mod:`repro.analysis.rectify` and
:mod:`repro.analysis.chains` together: ``normalize`` rectifies the
whole program (so every rule is function-free with functional
predicates) and compiles the requested predicate's recursion into its
chain form, which is the input every chain-split evaluator consumes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..datalog.literals import Predicate
from ..datalog.rules import Program
from ..engine.builtins import BuiltinRegistry, default_registry
from .chains import CompiledRecursion, RecursionClass, classify_recursion, compile_recursion
from .rectify import rectify_program

__all__ = ["normalize", "NormalizedProgram"]


class NormalizedProgram:
    """A rectified program plus compiled forms for its linear
    recursions, computed on demand and cached."""

    def __init__(self, program: Program, registry: Optional[BuiltinRegistry] = None):
        self.original = program
        self.program = rectify_program(program)
        self.registry = registry if registry is not None else default_registry()
        self._compiled: Dict[Predicate, CompiledRecursion] = {}
        self._classes: Dict[Predicate, str] = {}

    def classify(self, predicate: Predicate) -> str:
        if predicate not in self._classes:
            self._classes[predicate] = classify_recursion(self.program, predicate)
        return self._classes[predicate]

    def compiled(self, predicate: Predicate) -> CompiledRecursion:
        """Compiled chain form; valid for linear and nested-linear
        recursions (the outer level of a nested recursion is linear)."""
        if predicate not in self._compiled:
            self._compiled[predicate] = compile_recursion(
                self.program, predicate, self.registry
            )
        return self._compiled[predicate]


def normalize(
    program: Program,
    predicate: Predicate,
    registry: Optional[BuiltinRegistry] = None,
) -> Tuple[Program, CompiledRecursion]:
    """Rectify ``program`` and compile ``predicate``'s recursion.

    Returns the rectified program and the compiled recursion.
    """
    normalized = NormalizedProgram(program, registry)
    return normalized.program, normalized.compiled(predicate)

"""Adorned programs: binding propagation with a pluggable rule.

The magic-sets transformation works on an *adorned* program: every IDB
predicate occurrence is annotated with a ``b``/``f`` string describing
which arguments are bound at call time, derived by sideways information
passing (SIP) through each rule body.  Algorithm 3.1's whole point is
that the *binding propagation rule* is a policy: classic magic sets
always propagate a binding across a body literal, while chain-split
magic sets refuse to propagate across weak linkages (high join
expansion ratio) or non-evaluable functional predicates.

:func:`adorn_program` therefore accepts a ``propagation_hook``; the
default reproduces classic magic sets, and
:class:`~repro.analysis.cost.CostModel`-backed hooks produce the
chain-split variant (see :mod:`repro.core.magic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import is_ground, term_variables
from ..engine.builtins import BuiltinRegistry, default_registry
from .finiteness import adornment_of, bound_positions

__all__ = [
    "AdornedLiteral",
    "AdornedRule",
    "AdornedProgram",
    "adorn_program",
    "adornment_for_query",
    "adorned_name",
]

#: hook(literal, bound_vars, is_idb) -> Optional[bool]; None = default.
PropagationHook = Callable[[Literal, Set[str], bool], Optional[bool]]


@dataclass
class AdornedLiteral:
    """A body literal with its call-time adornment and the decision
    whether its output bindings were propagated sideways."""

    literal: Literal
    adornment: str
    propagated: bool
    is_idb: bool

    def __str__(self) -> str:
        mark = "" if self.propagated else "  [delayed]"
        return f"{self.literal}^{self.adornment}{mark}"


@dataclass
class AdornedRule:
    """One rule adorned under a specific head adornment."""

    rule: Rule
    head_adornment: str
    body: List[AdornedLiteral]

    def __str__(self) -> str:
        body = ", ".join(str(b) for b in self.body)
        return f"{self.rule.head}^{self.head_adornment} :- {body}."


class AdornedProgram:
    """All adorned rules reachable from the query adornment."""

    def __init__(
        self,
        query_predicate: Predicate,
        query_adornment: str,
        rules: List[AdornedRule],
        calls: Set[Tuple[Predicate, str]],
    ):
        self.query_predicate = query_predicate
        self.query_adornment = query_adornment
        self.rules = rules
        self.calls = calls

    def __iter__(self):
        return iter(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def adornment_for_query(query: Literal) -> str:
    """Adornment induced by a query literal: ground arguments bound."""
    return "".join("b" if is_ground(arg) else "f" for arg in query.args)


def adorned_name(name: str, adornment: str) -> str:
    """Name of the adorned predicate (``sg`` + ``bf`` -> ``sg__bf``)."""
    return f"{name}__{adornment}"


def adorn_program(
    program: Program,
    query_predicate: Predicate,
    query_adornment: str,
    registry: Optional[BuiltinRegistry] = None,
    propagation_hook: Optional[PropagationHook] = None,
    sip: str = "leftmost",
) -> AdornedProgram:
    """Adorn all rules reachable from ``query_predicate^adornment``.

    SIP strategies:

    * ``"leftmost"`` (default) — textual left-to-right, matching the
      paper's worked examples (rules 1.11/1.12);
    * ``"greedy"`` — at each step adorn the remaining literal with the
      most bound argument positions (IDB literals last among ties), a
      bound-is-easier heuristic that can produce tighter adornments
      when selective literals appear late in the body.

    The hook may veto propagation for any literal; builtins
    additionally never propagate unless evaluable under the current
    bindings (an unevaluable builtin *cannot* pass a binding on — that
    is the finiteness-based split).
    """
    if sip not in {"leftmost", "greedy"}:
        raise ValueError("sip must be 'leftmost' or 'greedy'")
    registry = registry if registry is not None else default_registry()
    if len(query_adornment) != query_predicate.arity or any(
        c not in "bf" for c in query_adornment
    ):
        raise ValueError(
            f"bad adornment {query_adornment!r} for {query_predicate}"
        )
    idb = program.idb_predicates()
    adorned_rules: List[AdornedRule] = []
    seen: Set[Tuple[Predicate, str]] = set()
    worklist: List[Tuple[Predicate, str]] = [(query_predicate, query_adornment)]

    while worklist:
        predicate, adornment = worklist.pop()
        if (predicate, adornment) in seen:
            continue
        seen.add((predicate, adornment))
        for rule in program.rules_for(predicate):
            bound: Set[str] = set()
            for position, flag in enumerate(adornment):
                if flag == "b":
                    for var in term_variables(rule.head.args[position]):
                        bound.add(var.name)
            body: List[AdornedLiteral] = []
            for literal in _sip_order(rule.body, bound, sip):
                literal_adornment = adornment_of(literal, bound)
                is_idb_literal = literal.predicate in idb
                propagate = _decide_propagation(
                    literal, bound, is_idb_literal, registry, propagation_hook
                )
                body.append(
                    AdornedLiteral(literal, literal_adornment, propagate, is_idb_literal)
                )
                if is_idb_literal:
                    # Negated IDB literals are adorned too: their
                    # definition must be rewritten so the negation
                    # tests the right (relevant) facts.
                    worklist.append((literal.predicate, literal_adornment))
                if propagate:
                    for var in literal.variables():
                        bound.add(var.name)
            adorned_rules.append(AdornedRule(rule, adornment, body))

    return AdornedProgram(query_predicate, query_adornment, adorned_rules, seen)


def _sip_order(body, bound, sip: str):
    """The order in which the SIP visits body literals."""
    if sip == "leftmost":
        return list(body)
    remaining = list(body)
    bound_names = set(bound)
    ordered = []
    while remaining:
        def score(literal):
            from .finiteness import bound_positions

            positions = len(bound_positions(literal, bound_names))
            # Prefer non-IDB on ties (cheaper to pass through first);
            # stable on textual order otherwise.
            return positions

        best_index = max(range(len(remaining)), key=lambda i: score(remaining[i]))
        literal = remaining.pop(best_index)
        ordered.append(literal)
        bound_names |= {v.name for v in literal.variables()}
    return ordered


def _decide_propagation(
    literal: Literal,
    bound: Set[str],
    is_idb_literal: bool,
    registry: BuiltinRegistry,
    hook: Optional[PropagationHook],
) -> bool:
    if literal.negated:
        # Negation-as-failure filters; it never binds new variables.
        return False
    builtin = registry.get(literal.predicate)
    if builtin is not None and not builtin.is_finite_under(
        bound_positions(literal, bound)
    ):
        # A non-evaluable functional predicate cannot pass bindings on:
        # mandatory delay regardless of policy.
        return False
    if hook is not None:
        verdict = hook(literal, bound, is_idb_literal)
        if verdict is not None:
            return verdict
    return True

"""Cost-based join ordering for rule bodies (the paper's ref [18]).

The default body ordering (:func:`repro.engine.joins.order_body`) is a
greedy bound-is-easier heuristic.  This module provides the System-R
style alternative: dynamic programming over literal subsets, using the
catalog statistics to estimate the intermediate-result cardinality of
every join prefix, subject to the same safety constraints (builtins
and negations only when their inputs are bound).

Exact DP is exponential in the body length; rule bodies are short
(the paper's largest has five literals), so the classic algorithm is
practical.  A ``max_dp_literals`` guard falls back to the greedy order
for unusually long bodies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal
from ..datalog.terms import term_variables
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.database import Database
from ..engine.joins import UnsafeRuleError, order_body
from ..engine.statistics import CatalogStatistics
from .finiteness import bound_positions

__all__ = ["CostBasedOrderer"]


class CostBasedOrderer:
    """Order rule bodies by estimated intermediate cardinality."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_dp_literals: int = 8,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.statistics = CatalogStatistics(database)
        self.max_dp_literals = max_dp_literals

    # ------------------------------------------------------------------
    def order(
        self,
        body: Sequence[Literal],
        initially_bound: Sequence[str] = (),
    ) -> List[Tuple[int, Literal]]:
        """A safe, cost-minimal evaluation order as (index, literal)
        pairs — drop-in compatible with :func:`order_body`."""
        if len(body) > self.max_dp_literals:
            return order_body(body, self.registry, initially_bound)
        best = self._dp(list(body), set(initially_bound))
        if best is None:
            # No safe complete order exists under our model; let the
            # greedy orderer raise its (better) diagnostic.
            return order_body(body, self.registry, initially_bound)
        _, order = best
        return [(index, body[index]) for index in order]

    # ------------------------------------------------------------------
    def _dp(
        self, body: List[Literal], initially_bound: Set[str]
    ) -> Optional[Tuple[float, List[int]]]:
        """Subset DP: state = frozenset of placed literal indexes;
        value = (total estimated intermediate tuples, best order)."""
        n = len(body)
        full = frozenset(range(n))
        table: Dict[FrozenSet[int], Tuple[float, float, List[int]]] = {
            frozenset(): (0.0, 1.0, [])
        }
        # (total_cost, current_cardinality, order)
        for size in range(n):
            for state, (cost, cardinality, order) in list(table.items()):
                if len(state) != size:
                    continue
                bound = set(initially_bound)
                for placed in state:
                    bound |= {v.name for v in body[placed].variables()}
                for candidate in range(n):
                    if candidate in state:
                        continue
                    literal = body[candidate]
                    if not self._safe(literal, bound):
                        continue
                    expansion = self._expansion(literal, bound)
                    new_cardinality = max(cardinality * expansion, 0.0)
                    new_cost = cost + new_cardinality
                    new_state = state | {candidate}
                    existing = table.get(new_state)
                    if existing is None or new_cost < existing[0]:
                        table[new_state] = (
                            new_cost,
                            new_cardinality,
                            order + [candidate],
                        )
        final = table.get(full)
        if final is None:
            return None
        return final[0], final[2]

    def _safe(self, literal: Literal, bound: Set[str]) -> bool:
        if literal.negated:
            return all(v.name in bound for v in literal.variables())
        builtin = self.registry.get(literal.predicate)
        if builtin is not None:
            return builtin.is_finite_under(bound_positions(literal, bound))
        return True

    def _expansion(self, literal: Literal, bound: Set[str]) -> float:
        """Estimated output-per-input ratio of joining ``literal``."""
        if literal.negated:
            return 0.5  # a filter; assume half survive
        builtin = self.registry.get(literal.predicate)
        if builtin is not None:
            if literal.is_comparison():
                return 0.5
            return 1.0  # evaluable functional predicate: single-valued
        stats = self.statistics.for_predicate(literal.predicate)
        if stats is None:
            return 1.0
        positions = bound_positions(literal, bound)
        free = [i for i in range(literal.arity) if i not in positions]
        if not free:
            # Pure membership filter: selectivity of the key.
            return min(1.0, stats.selectivity(sorted(positions)) * stats.cardinality)
        if not positions:
            return float(stats.cardinality)
        return stats.fanout(sorted(positions), free)

"""Query analysis: rectification, chain compilation, adornment,
finiteness analysis and the chain-split cost model."""

from .adornment import (
    AdornedLiteral,
    AdornedProgram,
    AdornedRule,
    adorn_program,
    adorned_name,
    adornment_for_query,
)
from .chains import (
    ChainPath,
    CompilationError,
    CompiledRecursion,
    RecursionClass,
    classify_recursion,
    compile_recursion,
    is_bounded_recursion,
)
from .cost import CostModel, LinkageDecision
from .graphviz import chain_to_dot, program_to_dot, proof_to_dot
from .joinorder import CostBasedOrderer
from .finiteness import (
    NotFinitelyEvaluableError,
    PathSplit,
    adornment_of,
    bound_positions,
    is_immediately_evaluable,
    split_path,
)
from .normalize import NormalizedProgram, normalize
from .rectify import FUNCTOR_PREDICATES, is_rectified, rectify_program, rectify_rule

__all__ = [
    "AdornedLiteral",
    "AdornedProgram",
    "AdornedRule",
    "ChainPath",
    "CompilationError",
    "CompiledRecursion",
    "CostBasedOrderer",
    "CostModel",
    "chain_to_dot",
    "FUNCTOR_PREDICATES",
    "LinkageDecision",
    "NormalizedProgram",
    "NotFinitelyEvaluableError",
    "PathSplit",
    "RecursionClass",
    "adorn_program",
    "adorned_name",
    "adornment_for_query",
    "adornment_of",
    "bound_positions",
    "classify_recursion",
    "is_bounded_recursion",
    "compile_recursion",
    "is_immediately_evaluable",
    "is_rectified",
    "normalize",
    "program_to_dot",
    "proof_to_dot",
    "rectify_program",
    "rectify_rule",
    "split_path",
]

"""repro — Chain-Split Evaluation in Deductive Databases.

A from-scratch reproduction of Jiawei Han's ICDE 1992 paper: a
deductive-database engine (Datalog with function symbols), chain-form
compilation and adornment analyses, and the three chain-split
evaluation techniques — chain-split magic sets (Algorithm 3.1),
buffered chain-split evaluation (Algorithm 3.2) and chain-split
partial evaluation with constraint pushing (Algorithm 3.3).

Quickstart::

    from repro import Database, Planner

    db = Database()
    db.load_source('''
        sg(X, Y) :- sibling(X, Y).
        sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
    ''')
    db.add_fact("parent", ("ann", "bea"))
    ...
    planner = Planner(db)
    print(planner.plan("sg(ann, Y)").explain())
    for row in planner.answer_rows("sg(ann, Y)"):
        print(row)
"""

from .datalog import (
    Literal,
    Predicate,
    Program,
    Rule,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
)
from .engine import (
    BuiltinRegistry,
    Counters,
    Database,
    ProofTracer,
    Relation,
    SemiNaiveEvaluator,
    TabledEvaluator,
    TopDownEvaluator,
    default_registry,
)
from .analysis import (
    CostModel,
    NotFinitelyEvaluableError,
    classify_recursion,
    compile_recursion,
    normalize,
    rectify_program,
    split_path,
)
from .core import (
    BufferedChainEvaluator,
    CountingEvaluator,
    ExistenceChecker,
    MagicSetsEvaluator,
    PartialChainEvaluator,
    Planner,
    QueryPlan,
    Strategy,
    decide_split,
    transitive_closure,
)
from .core.planner import adornment_key, plan_cache_key
from .resilience import (
    AdmissionController,
    Budget,
    BudgetExceeded,
    ChaosSchedule,
    CircuitBreaker,
)
from .service import (
    AsyncQueryServer,
    QueryResult,
    QueryServer,
    QuerySession,
    ServiceMetrics,
    WorkerPool,
    serve,
    serve_async,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AsyncQueryServer",
    "Budget",
    "BudgetExceeded",
    "BufferedChainEvaluator",
    "BuiltinRegistry",
    "ChaosSchedule",
    "CircuitBreaker",
    "CostModel",
    "Counters",
    "CountingEvaluator",
    "Database",
    "ExistenceChecker",
    "Literal",
    "MagicSetsEvaluator",
    "NotFinitelyEvaluableError",
    "PartialChainEvaluator",
    "Planner",
    "Predicate",
    "ProofTracer",
    "Program",
    "QueryPlan",
    "QueryResult",
    "QueryServer",
    "QuerySession",
    "Relation",
    "Rule",
    "SemiNaiveEvaluator",
    "ServiceMetrics",
    "WorkerPool",
    "TabledEvaluator",
    "Strategy",
    "TopDownEvaluator",
    "adornment_key",
    "classify_recursion",
    "compile_recursion",
    "decide_split",
    "default_registry",
    "normalize",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_term",
    "plan_cache_key",
    "rectify_program",
    "serve",
    "serve_async",
    "split_path",
    "transitive_closure",
]

"""List workloads for the functional-recursion experiments
(append / isort / qsort)."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..datalog.terms import Const, Term, list_to_python, make_list

__all__ = [
    "random_int_list",
    "as_list_term",
    "from_list_term",
    "sorted_copy",
]


def random_int_list(length: int, seed: int = 0, low: int = 0, high: int = 10_000) -> List[int]:
    """A reproducible random integer list (duplicates allowed)."""
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(length)]


def as_list_term(values: Sequence[object]) -> Term:
    """Wrap Python values as a ground list term."""
    return make_list([_const(v) for v in values])


def from_list_term(term: Term) -> List[object]:
    """Unwrap a ground list term back to Python values."""
    values = []
    for element in list_to_python(term):
        if not isinstance(element, Const):
            raise ValueError(f"non-constant list element {element}")
        values.append(element.value)
    return values


def sorted_copy(values: Sequence[object]) -> List[object]:
    """The oracle the sorting programs are checked against."""
    return sorted(values)


def _const(value: object) -> Const:
    if isinstance(value, Const):
        return value
    if isinstance(value, (str, int, float, bool)):
        return Const(value)
    raise TypeError(f"cannot wrap {value!r}")

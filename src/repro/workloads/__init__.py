"""Synthetic workloads: the paper's canonical programs plus seeded
EDB generators (families for sg/scsg, flight networks for travel,
random lists for the sorting recursions)."""

from .family import FamilyConfig, family_database, same_country_pairs
from .graphs import FlightConfig, flight_database, layered_digraph, random_digraph
from .lists import as_list_term, from_list_term, random_int_list, sorted_copy
from .programs import (
    ANCESTOR,
    APPEND,
    HANOI,
    ISORT,
    NQUEENS,
    NREV,
    QSORT,
    SCSG,
    SG,
    TRAVEL,
    TRAVEL_CONNECTED,
    load,
)

__all__ = [
    "ANCESTOR",
    "APPEND",
    "FamilyConfig",
    "FlightConfig",
    "HANOI",
    "ISORT",
    "NQUEENS",
    "NREV",
    "QSORT",
    "SCSG",
    "SG",
    "TRAVEL",
    "TRAVEL_CONNECTED",
    "as_list_term",
    "family_database",
    "flight_database",
    "from_list_term",
    "layered_digraph",
    "load",
    "random_digraph",
    "random_int_list",
    "same_country_pairs",
    "sorted_copy",
]

"""Synthetic family EDBs for the sg / scsg experiments.

The scsg claim (paper Example 1.2) depends on two knobs:

* the **parent fan-out** — the expansion ratio of the strong linkage
  the chain-split follows;
* the **country coarseness** — ``same_country`` relates everyone born
  in the same country, so with P people and C countries its expansion
  ratio is ≈ P/C: the weak linkage.

:func:`family_database` builds a layered population: ``levels`` layers
of ``width`` people; each person in layer *l* has ``parents_per_child``
parents drawn from layer *l+1* (``parent(child, parent)`` — chains
ascend the ancestry like the paper's examples).  Siblings are pairs in
the top-ish layer sharing a parent; countries are assigned round-robin.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.database import Database
from .programs import SCSG, SG

__all__ = ["FamilyConfig", "family_database", "same_country_pairs"]


class FamilyConfig:
    """Parameters of the synthetic population."""

    def __init__(
        self,
        levels: int = 5,
        width: int = 20,
        parents_per_child: int = 1,
        countries: int = 4,
        sibling_fraction: float = 0.5,
        seed: int = 0,
        per_level_countries: bool = False,
        lonely_fraction: float = 0.0,
    ):
        if levels < 2:
            raise ValueError("need at least two levels")
        if width < 2:
            raise ValueError("need at least two people per level")
        if countries < 1:
            raise ValueError("need at least one country")
        self.levels = levels
        self.width = width
        self.parents_per_child = parents_per_child
        self.countries = countries
        self.sibling_fraction = sibling_fraction
        self.seed = seed
        # When true, countries never span generations: the
        # same_country expansion ratio shrinks to ~2 x width /
        # (2 x countries) per level — the strong-linkage end of the
        # E2 ratio sweep.
        self.per_level_countries = per_level_countries
        # Fraction of each level given a unique country (no
        # same-country partner at all).  Drives the same_country
        # expansion ratio below 1: following the linkage then *prunes*
        # the frontier, which is the regime where chain-following
        # beats chain-split (the other side of the E2 crossover).
        if not 0.0 <= lonely_fraction <= 1.0:
            raise ValueError("lonely_fraction must be in [0, 1]")
        self.lonely_fraction = lonely_fraction

    @property
    def population(self) -> int:
        return self.levels * self.width

    def person(self, level: int, index: int) -> str:
        return f"p{level}_{index}"


def family_database(
    config: FamilyConfig,
    program: str = SCSG,
    materialize_same_country: bool = True,
) -> Database:
    """Build the EDB (parent, sibling, same_country) + the program.

    ``same_country`` is materialized as explicit pairs (quadratic in
    the per-country population) because that is exactly the relation
    the weak linkage joins through; the blow-up is the point.
    """
    rng = random.Random(config.seed)
    database = Database()
    database.load_source(program)

    country: Dict[str, int] = {}
    for level in range(config.levels):
        for index in range(config.width):
            person = config.person(level, index)
            # Pair-aligned assignment: sibling pairs (2k, 2k+1) share a
            # country, so same-country same-generation relatives exist.
            # High indexes become 'lonely' (unique country) per the
            # configured fraction.
            if index >= config.width * (1.0 - config.lonely_fraction):
                country[person] = ("solo", level, index)
                continue
            key = (index // 2) % config.countries
            country[person] = (level, key) if config.per_level_countries else key

    # parent(child, parent): ascend one level.
    for level in range(config.levels - 1):
        for index in range(config.width):
            child = config.person(level, index)
            choices = rng.sample(
                range(config.width),
                min(config.parents_per_child, config.width),
            )
            for parent_index in choices:
                database.add_fact(
                    "parent", (child, config.person(level + 1, parent_index))
                )

    # Siblings in the second-from-top level: same-index pairs.
    sibling_level = config.levels - 2
    pair_count = int(config.width * config.sibling_fraction / 2)
    for pair in range(pair_count):
        left = config.person(sibling_level, 2 * pair)
        right = config.person(sibling_level, 2 * pair + 1)
        database.add_fact("sibling", (left, right))
        database.add_fact("sibling", (right, left))

    if materialize_same_country:
        for a, ca in country.items():
            for b, cb in country.items():
                if a != b and ca == cb:
                    database.add_fact("same_country", (a, b))
    return database


def same_country_pairs(config: FamilyConfig) -> int:
    """Expected size of the materialized same_country relation."""
    per_country: Dict[object, int] = {}
    for level in range(config.levels):
        for index in range(config.width):
            if index >= config.width * (1.0 - config.lonely_fraction):
                continue  # unique country: contributes no pairs
            key = (index // 2) % config.countries
            if config.per_level_countries:
                key = (level, key)
            per_country[key] = per_country.get(key, 0) + 1
    return sum(n * (n - 1) for n in per_country.values())

"""Flight networks and plain digraphs for the travel / TC experiments."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.database import Database
from ..engine.relation import Relation
from .programs import TRAVEL

__all__ = [
    "FlightConfig",
    "flight_database",
    "random_digraph",
    "layered_digraph",
]


class FlightConfig:
    """Parameters of the synthetic flight network.

    ``extra_flights`` beyond the spanning backbone introduce cycles
    (return flights), which is what makes unconstrained evaluation
    diverge and constraint pushing necessary for termination.
    """

    def __init__(
        self,
        airports: int = 12,
        extra_flights: int = 24,
        min_fare: int = 50,
        max_fare: int = 400,
        seed: int = 0,
    ):
        if airports < 2:
            raise ValueError("need at least two airports")
        if min_fare <= 0 or max_fare < min_fare:
            raise ValueError("fares must be positive with min <= max")
        self.airports = airports
        self.extra_flights = extra_flights
        self.min_fare = min_fare
        self.max_fare = max_fare
        self.seed = seed

    def airport(self, index: int) -> str:
        return f"city{index}"


def flight_database(config: FlightConfig, program: str = TRAVEL) -> Database:
    """Build flight facts + the travel program.

    Flights: a backbone path ``city0 -> city1 -> ... -> cityN-1`` (so a
    route always exists) plus ``extra_flights`` random directed edges,
    including back-edges that create cycles.  Fares are uniform in
    [min_fare, max_fare]; times are synthetic but consistent (arrival
    after departure).
    """
    rng = random.Random(config.seed)
    database = Database()
    database.load_source(program)
    flight_number = 0

    def add_flight(src: int, dst: int) -> None:
        nonlocal flight_number
        flight_number += 1
        departure_time = rng.randrange(600, 2000, 5)
        duration = rng.randrange(60, 300, 5)
        fare = rng.randint(config.min_fare, config.max_fare)
        database.add_fact(
            "flight",
            (
                f"f{flight_number}",
                config.airport(src),
                departure_time,
                config.airport(dst),
                departure_time + duration,
                fare,
            ),
        )

    for i in range(config.airports - 1):
        add_flight(i, i + 1)
    for _ in range(config.extra_flights):
        src = rng.randrange(config.airports)
        dst = rng.randrange(config.airports)
        if src != dst:
            add_flight(src, dst)
    return database


def random_digraph(
    nodes: int, edges: int, seed: int = 0, name: str = "edge"
) -> Relation:
    """A uniform random digraph as a binary relation (no self-loops)."""
    rng = random.Random(seed)
    relation = Relation(name, 2)
    attempts = 0
    while len(relation) < edges and attempts < edges * 20:
        attempts += 1
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a != b:
            relation.add(
                (_node(a), _node(b))
            )
    return relation


def layered_digraph(
    layers: int, width: int, fanout: int, seed: int = 0, name: str = "edge"
) -> Relation:
    """An acyclic layered digraph: each node points to ``fanout``
    random nodes of the next layer.  Diameter = ``layers - 1``."""
    rng = random.Random(seed)
    relation = Relation(name, 2)
    for layer in range(layers - 1):
        for index in range(width):
            targets = rng.sample(range(width), min(fanout, width))
            for target in targets:
                relation.add(
                    (
                        _node(layer * width + index),
                        _node((layer + 1) * width + target),
                    )
                )
    return relation


def _node(index: int):
    from ..engine.relation import wrap_term

    return wrap_term(f"n{index}")

"""The paper's canonical programs, in surface syntax.

Every worked example of the paper is available here as parse-ready
source text plus a loader that returns a :class:`Database` with the
rules installed (facts are supplied by the workload generators).
"""

from __future__ import annotations

from ..engine.database import Database

__all__ = [
    "HANOI",
    "NREV",
    "SG",
    "SCSG",
    "ANCESTOR",
    "APPEND",
    "ISORT",
    "QSORT",
    "TRAVEL",
    "TRAVEL_CONNECTED",
    "NQUEENS",
    "load",
]

#: Same-generation (paper rules 1.1, 1.2).
SG = """
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
"""

#: Same-country same-generation (paper rules 1.5-1.7): the parents of
#: each pair must be born in the same country — the weak linkage
#: ``same_country`` is what chain-split severs.
SCSG = """
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).
"""

#: Plain ancestor: the textbook single-chain recursion.
ANCESTOR = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""

#: List append (paper rules 1.13, 1.14; rectified to 1.15, 1.16).
APPEND = """
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
"""

#: Insertion sort (paper rules 4.1-4.5): a nested linear recursion —
#: ``insert`` in the recursive body is itself linear-recursive.
ISORT = """
isort([X|Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
isort([], []).
insert(X, [], [X]).
insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
insert(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
"""

#: Quick sort (paper rules 4.16-4.30): a nonlinear recursion.
QSORT = """
qsort([X|Xs], Ys) :- partition(Xs, X, Littles, Bigs), qsort(Littles, Ls),
                     qsort(Bigs, Bs), append(Ls, [X|Bs], Ys).
qsort([], []).
partition([X|Xs], Y, Ls, [X|Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
partition([X|Xs], Y, [X|Ls], Bs) :- X =< Y, partition(Xs, Y, Ls, Bs).
partition([], Y, [], []).
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
"""

#: Trip planning (paper §3.3): a functional single-chain recursion
#: whose delayed portion accumulates the route list and the total fare
#: — the monotone quantities constraint pushing exploits.
#: flight(FlightNo, Departure, DepTime, Arrival, ArrTime, Fare).
TRAVEL = """
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A1, AT1, F1),
                              travel(L1, A1, DT1, A, AT, F2),
                              sum(F1, F2, F), cons(Fno, L1, L).
"""

#: Travel with a connection-time check (``DT1 >= AT1``): the check
#: needs the sub-trip's departure time, so the delayed portion is no
#: longer pure accumulators — the planner falls back from partial to
#: buffered chain-split evaluation on this variant.
TRAVEL_CONNECTED = """
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A1, AT1, F1),
                              travel(L1, A1, DT1, A, AT, F2), DT1 >= AT1,
                              sum(F1, F2, F), cons(Fno, L1, L).
"""

#: Naive reverse — the classic logic-programming benchmark (LIPS).
#: A nested linear recursion: the recursive rule calls ``append``,
#: itself a linear functional recursion, so evaluation composes two
#: chain-splits exactly like ``isort``/``insert`` (paper §4.1).
NREV = """
nrev([], []).
nrev([X|Xs], R) :- nrev(Xs, R1), append(R1, [X], R).
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
"""

#: Towers of Hanoi: a nonlinear functional recursion producing the
#: move list — evaluated top-down with deferred selection, like qsort.
HANOI = """
hanoi(N, Moves) :- transfer(N, left, right, middle, Moves).
transfer(0, _, _, _, []).
transfer(N, From, To, Via, Moves) :-
    N > 0, N1 is N - 1,
    transfer(N1, From, Via, To, Before),
    transfer(N1, Via, To, From, After),
    append(Before, [move(From, To) | After], Moves).
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
"""

#: N-queens (one of the LogicBase validation programs, §5).
NQUEENS = """
queens(N, Qs) :- rangelist(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :- selectq(Unplaced, Rest, Q), \\+ attack(Q, Safe),
                             place(Rest, [Q|Safe], Qs).
selectq([X|Xs], Xs, X).
selectq([Y|Ys], [Y|Zs], X) :- selectq(Ys, Zs, X).
attack(X, Xs) :- attack_at(X, 1, Xs).
attack_at(X, N, [Y|_]) :- X is Y + N.
attack_at(X, N, [Y|_]) :- X is Y - N.
attack_at(X, N, [_|Ys]) :- N1 is N + 1, attack_at(X, N1, Ys).
rangelist(N, N, [N]).
rangelist(M, N, [M|Ns]) :- M < N, M1 is M + 1, rangelist(M1, N, Ns).
"""


def load(source: str) -> Database:
    """A fresh database with ``source`` loaded (rules + any facts)."""
    database = Database()
    database.load_source(source)
    return database

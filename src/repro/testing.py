"""Testing helpers for downstream users (and this repo's own suite).

The library's strongest correctness property is that its independent
strategies agree; these helpers make that assertable in one line in a
user's own test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .datalog.literals import Literal
from .datalog.parser import parse_query
from .engine.database import Database
from .engine.relation import Relation
from .engine.seminaive import SemiNaiveEvaluator
from .engine.topdown import TopDownEvaluator
from .datalog.unify import apply_substitution, unify_sequences
from .datalog.terms import Term, is_ground

__all__ = [
    "answers_via_seminaive",
    "answers_via_topdown",
    "assert_strategies_agree",
]


def answers_via_seminaive(database: Database, query_source) -> frozenset:
    """Oracle 1: full bottom-up evaluation, filtered by the query."""
    query = _query(query_source)
    result = SemiNaiveEvaluator(database).evaluate()
    relation = result.relations.get(query.predicate)
    rows = relation.rows() if relation is not None else set()
    stored = database.get(query.predicate)
    if stored is not None:
        rows = rows | stored.rows()
    return frozenset(
        row for row in rows if unify_sequences(query.args, row) is not None
    )


def answers_via_topdown(database: Database, query_source) -> frozenset:
    """Oracle 2: SLD resolution with deferred goal selection."""
    query = _query(query_source)
    evaluator = TopDownEvaluator(database)
    rows = set()
    for solution in evaluator.solve([query]):
        row = tuple(apply_substitution(arg, solution) for arg in query.args)
        if all(is_ground(value) for value in row):
            rows.add(row)
    return frozenset(rows)


def assert_strategies_agree(
    database: Database,
    query_source,
    extra: Sequence[frozenset] = (),
    oracle: str = "seminaive",
) -> frozenset:
    """Assert the planner's answer equals the chosen oracle's (and any
    ``extra`` answer sets); returns the agreed answers."""
    from .core.planner import Planner

    query = _query(query_source)
    planner_rows = frozenset(
        tuple(row) for row in Planner(database).answer(query)
    )
    if oracle == "seminaive":
        oracle_rows = answers_via_seminaive(database, query)
    elif oracle == "topdown":
        oracle_rows = answers_via_topdown(database, query)
    else:
        raise ValueError(f"unknown oracle {oracle!r}")
    assert planner_rows == oracle_rows, (
        f"planner != {oracle} oracle for {query}: "
        f"{planner_rows ^ oracle_rows}"
    )
    for index, answer_set in enumerate(extra):
        assert frozenset(answer_set) == oracle_rows, (
            f"extra answer set #{index} disagrees for {query}"
        )
    return oracle_rows


def _query(query_source) -> Literal:
    if isinstance(query_source, Literal):
        return query_source
    goals = parse_query(query_source)
    return goals[0]

"""Nested chain-split evaluation (paper §4.1).

``isort`` is the paper's flagship *nested linear recursion*: the outer
recursion's chain generating path contains ``insert``, itself a linear
recursion needing chain-split.  "This example demonstrates that
chain-split evaluation is a popular technique in the evaluation of
nested linear recursions."

This evaluator composes :class:`~repro.core.buffered.BufferedChainEvaluator`s:
the outer recursion runs buffered chain-split evaluation, and every
inner-recursion literal in its chain path is solved by a recursively
constructed evaluator (memoized per ground call), through the
``idb_solver`` hook of the join machinery.

Finite evaluability of an inner call is judged per the adornment
reasoning of §4.1: the call is accepted when the inner chain's
immediately evaluable portion is non-empty (or the call is ground) and
re-binds every recursive-argument position that the call itself had
bound — the condition under which the inner descent makes progress on
bound data rather than enumerating an infinite relation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import Term, Var, is_ground
from ..datalog.unify import Substitution, apply_substitution, unify_sequences
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.relation import Relation
from ..analysis.chains import (
    CompilationError,
    CompiledRecursion,
    RecursionClass,
    classify_recursion,
)
from ..analysis.finiteness import (
    NotFinitelyEvaluableError,
    bound_positions,
    split_path,
)
from .buffered import BufferedChainEvaluator, BufferedEvaluationError

__all__ = ["NestedChainEvaluator", "NestedEvaluationError"]


class NestedEvaluationError(ValueError):
    """The program does not fit nested chain-split evaluation."""


class NestedChainEvaluator:
    """Chain-split evaluation of (nested) linear recursions.

    ``database`` must hold the *rectified* program; every recursion
    reachable from ``predicate`` through chain paths must be linear
    (or nested linear).
    """

    def __init__(
        self,
        database: Database,
        predicate: Predicate,
        registry: Optional[BuiltinRegistry] = None,
        max_depth: int = 100_000,
        budget=None,
    ):
        self.database = database
        self.predicate = predicate
        self.registry = registry if registry is not None else default_registry()
        self.max_depth = max_depth
        # Optional resilience.Budget, handed to every inner buffered
        # evaluation (outer recursion and nested inner calls alike).
        self.budget = budget
        self._compiled: Dict[Predicate, CompiledRecursion] = {}
        self._call_cache: Dict[Tuple[Predicate, Tuple[object, ...]], Relation] = {}
        self.counters = Counters()

    # ------------------------------------------------------------------
    def evaluate(self, query: Literal) -> Tuple[Relation, Counters]:
        """Answers (as a relation over the query arguments) + counters."""
        self.counters = Counters()
        answers = self._evaluate_call(query)
        return answers, self.counters

    # ------------------------------------------------------------------
    def _compile(self, predicate: Predicate) -> CompiledRecursion:
        if predicate not in self._compiled:
            from ..analysis.chains import compile_recursion

            kind = classify_recursion(self.database.program, predicate)
            if kind not in {
                RecursionClass.LINEAR,
                RecursionClass.NESTED_LINEAR,
            }:
                raise NestedEvaluationError(
                    f"{predicate} is {kind}; nested chain-split evaluation "
                    "covers linear and nested-linear recursions"
                )
            self._compiled[predicate] = compile_recursion(
                self.database.program, predicate, self.registry
            )
        return self._compiled[predicate]

    def _evaluate_call(self, query: Literal) -> Relation:
        """Evaluate one (possibly nested) recursive call, memoized on
        the ground portion of its arguments."""
        key = (
            query.predicate,
            tuple(
                arg if is_ground(arg) else ("?", position)
                for position, arg in enumerate(query.args)
            ),
        )
        cached = self._call_cache.get(key)
        if cached is not None:
            return cached
        compiled = self._compile(query.predicate)
        evaluator = BufferedChainEvaluator(
            self.database,
            compiled,
            self.registry,
            max_depth=self.max_depth,
            idb_solver=self._solve_idb,
            idb_finite=self._idb_finite,
            budget=self.budget,
        )
        answers, counters = evaluator.evaluate(query)
        self.counters.merge(counters)
        self._call_cache[key] = answers
        return answers

    # ------------------------------------------------------------------
    # Hooks plugged into the buffered evaluator
    # ------------------------------------------------------------------
    def _solve_idb(
        self, literal: Literal, subst: Substitution
    ) -> Iterator[Substitution]:
        """Solve an inner-recursion literal for one binding context."""
        instantiated = tuple(
            apply_substitution(arg, subst) for arg in literal.args
        )
        call = Literal(literal.name, instantiated)
        answers = self._evaluate_call(call)
        for row in answers:
            extended = unify_sequences(literal.args, row, subst)
            if extended is not None:
                yield extended

    def _idb_finite(self, literal: Literal, bound: FrozenSet[int]) -> bool:
        """Adornment-level finiteness of an inner recursive call.

        Accept when (a) the call is fully bound, or (b) the inner
        chain's immediately evaluable portion under this adornment is
        non-empty and re-binds every recursive-argument position the
        call had bound — i.e. the inner descent progresses on bound
        data (paper §4.1's insert^bbf versus the rejected insert^bff).
        """
        try:
            compiled = self._compile(literal.predicate)
        except (NestedEvaluationError, CompilationError):
            return False
        if len(bound) == literal.arity:
            return True
        chains = compiled.generating_chains()
        if len(chains) != 1:
            return False
        chain = chains[0]
        head_args = compiled.head_args
        entry = {
            head_args[p].name
            for p in bound
            if isinstance(head_args[p], Var)
        }
        try:
            split = split_path(
                chain,
                entry,
                compiled.recursive_literal,
                self.registry,
                self.database,
                idb_finite=self._idb_finite,
            )
        except NotFinitelyEvaluableError:
            return False
        if not split.evaluable:
            return False
        evaluable_vars = set(entry)
        for lit in split.evaluable:
            evaluable_vars |= {v.name for v in lit.variables()}
        rec_args = compiled.rec_args
        for position in bound:
            rec_arg = rec_args[position]
            if isinstance(rec_arg, Var) and rec_arg.name not in evaluable_vars:
                return False
        return True

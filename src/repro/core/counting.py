"""The counting method (ref [1]) for compiled 2-chain recursions.

Counting exploits the level symmetry of recursions like ``sg``: the
query constant descends the first chain for *i* levels, crosses the
exit relation, and ascends the second chain for exactly *i* levels.
Instead of a magic set that forgets depth, counting keeps the frontier
*per level* — which is also the scaffold Algorithm 3.2 (buffered
chain-split evaluation) extends: there, the per-level buffer holds not
just chain values but the split-off variables the delayed portion will
need.

This implementation works on any :class:`CompiledRecursion` with
exactly two generating chains, one of which is fully bound by the
query.  It assumes acyclic chain data (the paper defers cyclic data to
cyclic-counting extensions, ref [5]); a depth guard raises otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Rule
from ..datalog.terms import Term, Var, is_ground
from ..datalog.unify import Substitution, apply_substitution, unify_sequences
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.joins import evaluate_body, order_body
from ..engine.relation import Relation
from ..analysis.chains import ChainPath, CompiledRecursion

__all__ = ["CountingEvaluator", "CountingError"]


class CountingError(ValueError):
    """The recursion/query does not fit the counting method."""


class CountingEvaluator:
    """Counting evaluation of an n-chain recursion (n >= 2) for a
    query binding one chain's head arguments: the bound chain descends
    with per-level frontiers, and each remaining chain ascends the same
    number of levels from the exit tuples."""

    def __init__(
        self,
        database: Database,
        compiled: CompiledRecursion,
        registry: Optional[BuiltinRegistry] = None,
        max_depth: int = 10_000,
        tracer=None,
        profiler=None,
        budget=None,
    ):
        self.database = database
        self.compiled = compiled
        self.registry = registry if registry is not None else default_registry()
        self.max_depth = max_depth
        self.tracer = tracer
        # Optional profile.SpanProfiler, same discipline as the tracer.
        self.profiler = profiler
        # Optional resilience.Budget: checked per descent level, per
        # derived answer, and per streamed substitution.
        self.budget = budget
        chains = compiled.generating_chains()
        if len(chains) < 2:
            raise CountingError(
                f"counting requires a multi-chain recursion; "
                f"{compiled.predicate} has {len(chains)} generating chains"
            )
        self.chains = chains

    # ------------------------------------------------------------------
    def evaluate(self, query: Literal) -> Tuple[Relation, Counters]:
        """Answers (as a relation over the query predicate's arguments)
        and work counters."""
        if query.predicate != self.compiled.predicate:
            raise CountingError(f"query {query} is not on {self.compiled.predicate}")
        counters = Counters()
        profiler = self.profiler
        run_span = (
            profiler.begin("evaluate", "counting")
            if profiler is not None
            else None
        )
        try:
            return self._evaluate(query, counters)
        finally:
            if profiler is not None:
                profiler.end(run_span, derived=counters.derived_tuples)

    def _evaluate(
        self, query: Literal, counters: Counters
    ) -> Tuple[Relation, Counters]:
        profiler = self.profiler
        if profiler is not None:
            setup_span = profiler.begin("stage", "count_setup")
        head_args = self.compiled.head_args
        rec_args = self.compiled.rec_args
        if not all(isinstance(a, Var) for a in head_args):
            raise CountingError(
                "counting requires a normalized (rectified) recursion "
                "with an all-variable head"
            )

        bound_positions = {
            i for i, arg in enumerate(query.args) if is_ground(arg)
        }
        down = self._chain_covering(bound_positions)
        up_chains = [chain for chain in self.chains if chain is not down]

        lookup = self.database.get

        # ---- down phase: per-level frontiers of the bound chain ------
        seed: Substitution = {}
        for position in bound_positions:
            head_var = head_args[position]
            if isinstance(head_var, Var):
                seed[head_var.name] = query.args[position]
        down_order = order_body(
            down.literals, self.registry, initially_bound=set(seed)
        )
        down_positions = [p for p in down.head_positions]
        down_rec_positions = [p for p in down.rec_positions]

        tracer = self.tracer
        down_bound = {
            head_args[p].name
            for p in down_positions
            if isinstance(head_args[p], Var)
        }
        frontiers: List[Set[Tuple[Term, ...]]] = []
        current: Set[Tuple[Term, ...]] = {
            tuple(
                apply_substitution(head_args[p], seed) for p in down_positions
            )
        }
        seen_states: Set[frozenset] = set()
        if profiler is not None:
            profiler.end(setup_span)
        while current:
            frontiers.append(current)
            if profiler is not None:
                # Opened before the frontier-state cycle check: hashing
                # the whole frontier is part of this level's work.
                level_span = profiler.begin(
                    "stage", f"count_down L{len(frontiers) - 1}"
                )
            counters.buffered_values += len(current)
            if len(frontiers) > self.max_depth:
                raise CountingError(
                    "down chain exceeded max depth (cyclic data?)"
                )
            if self.budget is not None:
                self.budget.check_round(len(frontiers), counters)
            state = frozenset(current)
            if state in seen_states:
                raise CountingError(
                    "down-chain frontier repeated — cyclic chain data is "
                    "not supported by plain counting (see ref [5])"
                )
            seen_states.add(state)
            level_counts = (
                [0] * len(down_order) if tracer is not None else None
            )
            next_frontier: Set[Tuple[Term, ...]] = set()
            for values in current:
                level_seed = {
                    head_args[p].name: v
                    for p, v in zip(down_positions, values)
                    if isinstance(head_args[p], Var)
                }
                for solution in evaluate_body(
                    down_order, lookup, self.registry, level_seed, counters,
                    stage_counts=level_counts, budget=self.budget,
                ):
                    next_values = tuple(
                        apply_substitution(rec_args[p], solution)
                        for p in down_rec_positions
                    )
                    if all(is_ground(v) for v in next_values):
                        next_frontier.add(next_values)
            if profiler is not None:
                profiler.end(
                    level_span,
                    seeds=len(current),
                    spawned=len(next_frontier),
                )
            if tracer is not None:
                tracer.body_evaluated(
                    "count_down",
                    down_order,
                    level_counts,
                    seeds=len(current),
                    initially_bound=sorted(down_bound),
                    depth=len(frontiers) - 1,
                    spawned=len(next_frontier),
                )
            current = next_frontier

        # ---- exit phase: cross the exit rules at each level -----------
        # Answers at level i map the down-chain values to full head
        # tuples of the *innermost* call; the up phase then rewinds.
        if profiler is not None:
            exit_span = profiler.begin("stage", "count_exit")
        per_level_exit: List[List[Substitution]] = []
        for level, frontier in enumerate(frontiers):
            level_solutions: List[Substitution] = []
            for values in frontier:
                call_args: List[Term] = list(head_args)
                call_subst = {
                    head_args[p].name: v
                    for p, v in zip(down_positions, values)
                    if isinstance(head_args[p], Var)
                }
                for exit_rule in self.compiled.exit_rules:
                    bound_call = [
                        apply_substitution(a, call_subst) for a in head_args
                    ]
                    unified = unify_sequences(exit_rule.head.args, bound_call)
                    if unified is None:
                        continue
                    exit_order = order_body(
                        exit_rule.body,
                        self.registry,
                        initially_bound=set(unified),
                    )
                    for solution in evaluate_body(
                        exit_order, lookup, self.registry, unified, counters,
                        budget=self.budget,
                    ):
                        head_values = tuple(
                            apply_substitution(a, solution)
                            for a in exit_rule.head.args
                        )
                        level_solutions.append(
                            dict(
                                zip(
                                    [
                                        a.name
                                        for a in head_args
                                        if isinstance(a, Var)
                                    ],
                                    head_values,
                                )
                            )
                        )
            per_level_exit.append(level_solutions)
        if profiler is not None:
            profiler.end(
                exit_span,
                levels=len(frontiers),
                exit_solutions=sum(len(s) for s in per_level_exit),
            )
        if tracer is not None:
            tracer.phase(
                "count_exit",
                levels=len(frontiers),
                exit_solutions=sum(len(s) for s in per_level_exit),
            )

        # ---- up phase: ascend every remaining chain level by level ----
        if profiler is not None:
            up_span = profiler.begin("stage", "count_up")
        up_orders = [
            order_body(
                up.literals,
                self.registry,
                initially_bound={
                    rec_args[p].name
                    for p in up.rec_positions
                    if isinstance(rec_args[p], Var)
                },
            )
            for up in up_chains
        ]
        up_counts = [
            [0] * len(up_order) if tracer is not None else None
            for up_order in up_orders
        ]
        up_seeds = [[0] for _ in up_chains]
        answers = Relation(query.name, query.arity)
        for level in range(len(frontiers) - 1, -1, -1):
            # climb `level` steps up; at each step every up chain
            # advances one level (they interact only through the exit
            # tuple, so they climb independently within one solution).
            # The steps are chained as generators: one exit solution
            # flows through the whole climb before the next is touched,
            # so no per-step solution list is ever materialized.
            solutions: Iterable[Substitution] = per_level_exit[level]
            for step in range(level, 0, -1):
                for chain_no, (up, up_order) in enumerate(
                    zip(up_chains, up_orders)
                ):
                    solutions = self._climb_one_level(
                        solutions, up, up_order, head_args, rec_args,
                        lookup, counters,
                        stage_counts=up_counts[chain_no],
                        seed_counter=up_seeds[chain_no],
                    )
            # The climbed solutions carry the up-chain values at level
            # 0; the down-chain positions are the query's own constants
            # (the climb never touches them).
            for solution in solutions:
                row: List[Term] = []
                complete = True
                for p, head_var in enumerate(head_args):
                    if p in down.head_positions:
                        row.append(query.args[p])
                    else:
                        value = solution.get(head_var.name)
                        if value is None or not is_ground(value):
                            complete = False
                            break
                        row.append(value)
                if not complete:
                    continue
                if unify_sequences(query.args, tuple(row)) is not None:
                    if answers.add(tuple(row)):
                        counters.derived_tuples += 1
                        if self.budget is not None:
                            self.budget.check_tuple(counters)
        if profiler is not None:
            profiler.end(up_span, derived=len(answers))
        if tracer is not None:
            for up, up_order, chain_counts, seed_counter in zip(
                up_chains, up_orders, up_counts, up_seeds
            ):
                tracer.body_evaluated(
                    "count_up",
                    up_order,
                    chain_counts,
                    seeds=seed_counter[0],
                    initially_bound=sorted(
                        rec_args[p].name
                        for p in up.rec_positions
                        if isinstance(rec_args[p], Var)
                    ),
                    derived=len(answers),
                )
        return answers, counters

    # ------------------------------------------------------------------
    def _climb_one_level(
        self,
        solutions: Iterable[Substitution],
        up: ChainPath,
        up_order,
        head_args: Sequence[Term],
        rec_args: Sequence[Term],
        lookup,
        counters: Counters,
        stage_counts: Optional[List[int]] = None,
        seed_counter: Optional[List[int]] = None,
    ) -> Iterator[Substitution]:
        """One ascent step of one up chain, as a streaming stage."""
        for solution in solutions:
            if seed_counter is not None:
                seed_counter[0] += 1
            rec_seed: Substitution = {}
            for p in up.rec_positions:
                arg = rec_args[p]
                head_var = head_args[p]
                if isinstance(arg, Var) and isinstance(head_var, Var):
                    value = solution.get(head_var.name)
                    if value is not None:
                        rec_seed[arg.name] = value
            for up_solution in evaluate_body(
                up_order, lookup, self.registry, rec_seed, counters,
                stage_counts=stage_counts, budget=self.budget,
            ):
                climbed = dict(solution)
                for p in up.head_positions:
                    head_var = head_args[p]
                    if isinstance(head_var, Var):
                        climbed[head_var.name] = apply_substitution(
                            head_var, up_solution
                        )
                yield climbed

    def _chain_covering(self, bound_positions: Set[int]) -> ChainPath:
        for chain in self.chains:
            if set(chain.head_positions) <= bound_positions and chain.head_positions:
                return chain
        raise CountingError(
            "query constants do not fully bind either chain's head "
            "positions — counting is inapplicable"
        )

"""Constraint pushing for chain-split partial evaluation (ref [6]).

Algorithm 3.3 integrates constraint-based query evaluation: when a
chain accumulates a *monotone* quantity (the running fare ``sum`` in
``travel``, the length of the route list), a query constraint such as
``F =< 600`` can be pushed into the chain — any partial derivation
whose accumulated value already violates the bound is hopeless and is
pruned, which both saves work and (on cyclic data) makes the
evaluation terminate at all.

This module provides:

* :class:`Accumulator` — a detected accumulation pattern in the delayed
  portion of a split chain: ``b(Increment, RecResult, HeadResult)``
  where ``b`` is associative with identity (``sum``: 0; ``cons``: []),
  the increment comes from the buffered down-phase values, the second
  argument from the recursive call and the output feeds a head result
  position.
* :class:`PushedConstraint` — an upper-bound comparison on an
  accumulated value, with a *sound* dynamic monotonicity check: if a
  negative increment ever appears, pruning is disabled for the
  affected derivation (monotonicity would be violated).
* :func:`detect_accumulators` / :func:`push_constraints` — the analysis
  entry points the partial evaluator calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import NIL, Const, Term, Var, is_ground, make_list
from ..analysis.chains import CompiledRecursion
from ..analysis.finiteness import PathSplit

__all__ = [
    "Accumulator",
    "PushedConstraint",
    "ConstraintPushingError",
    "detect_accumulators",
    "push_constraints",
]


class ConstraintPushingError(ValueError):
    """A constraint cannot be pushed soundly."""


@dataclass
class Accumulator:
    """An accumulation pattern ``b(Increment, RecResult, HeadResult)``.

    ``kind`` is ``"sum"`` (numeric addition; identity 0, finalization
    ``acc + exit_value``) or ``"cons"`` (list prepend; identity ``[]``,
    finalization: fold the collected elements onto the exit list).
    ``head_position`` is the head argument position the accumulated
    value answers.
    """

    literal: Literal
    kind: str
    increment_var: str
    rec_var: str
    out_var: str
    head_position: int

    def identity(self):
        return 0 if self.kind == "sum" else []

    def step(self, acc, increment: Term):
        """Fold one down-phase increment into the accumulator."""
        if self.kind == "sum":
            if not isinstance(increment, Const) or not isinstance(
                increment.value, (int, float)
            ):
                raise ConstraintPushingError(
                    f"non-numeric increment {increment} for sum accumulator"
                )
            return acc + increment.value
        return [*acc, increment]

    def finalize(self, acc, exit_value: Term) -> Term:
        """Combine the accumulated prefix with the exit rule's value."""
        if self.kind == "sum":
            if not isinstance(exit_value, Const) or not isinstance(
                exit_value.value, (int, float)
            ):
                raise ConstraintPushingError(
                    f"non-numeric exit value {exit_value} for sum accumulator"
                )
            total = acc + exit_value.value
            return Const(total)
        return make_list(acc, tail=exit_value)

    def measure(self, acc) -> float:
        """Scalar measure of the accumulated value, for constraint
        checks: the value itself for sums, the length for lists."""
        if self.kind == "sum":
            return float(acc)
        return float(len(acc))


@dataclass
class PushedConstraint:
    """An upper bound on a monotone accumulated quantity.

    ``op`` is ``"<"`` or ``"=<"``.  ``on_length`` marks constraints on
    the list-length measure (pushed from ``length(L, N), N =< k``
    style goals) rather than on a numeric sum.
    """

    accumulator: Accumulator
    op: str
    bound: float

    def admits(self, measure: float) -> bool:
        if self.op == "<":
            return measure < self.bound
        return measure <= self.bound

    def __str__(self) -> str:
        target = (
            f"length(arg{self.accumulator.head_position})"
            if self.accumulator.kind == "cons"
            else f"arg{self.accumulator.head_position}"
        )
        return f"{target} {self.op} {self.bound:g}"


def detect_accumulators(
    compiled: CompiledRecursion, split: PathSplit
) -> List[Accumulator]:
    """Find accumulation patterns in the delayed portion of a split.

    A delayed literal ``b(I, R, O)`` is an accumulator when ``b`` is
    ``sum``/``plus`` or ``cons``, ``O`` is the head variable at some
    position *p*, and ``R`` is the recursive literal's variable at the
    same position *p* — the paper's shape for monotone chain
    quantities (``S' = S + S_i``, ``L' = append(L_i, L)``).
    """
    head_args = compiled.head_args
    rec_args = compiled.rec_args
    accumulators: List[Accumulator] = []
    for literal in split.delayed:
        if literal.arity != 3 or literal.negated:
            continue
        kind = None
        if literal.name in {"sum", "plus"}:
            kind = "sum"
        elif literal.name == "cons":
            kind = "cons"
        if kind is None:
            continue
        increment, rec_side, out = literal.args
        if not (
            isinstance(increment, Var)
            and isinstance(rec_side, Var)
            and isinstance(out, Var)
        ):
            continue
        for position, head_arg in enumerate(head_args):
            if not isinstance(head_arg, Var) or head_arg.name != out.name:
                continue
            rec_arg = rec_args[position]
            if isinstance(rec_arg, Var) and rec_arg.name == rec_side.name:
                accumulators.append(
                    Accumulator(
                        literal=literal,
                        kind=kind,
                        increment_var=increment.name,
                        rec_var=rec_side.name,
                        out_var=out.name,
                        head_position=position,
                    )
                )
    return accumulators


def push_constraints(
    constraint_literals: Sequence[Literal],
    query: Literal,
    accumulators: Sequence[Accumulator],
) -> Tuple[List[PushedConstraint], List[Literal]]:
    """Split query constraints into pushable and residual ones.

    ``constraint_literals`` are extra comparison goals attached to the
    query (e.g. the ``F =< 600`` of the travel example).  A comparison
    ``V op c`` (or ``c op V``) is pushable when ``V`` is the query
    variable at an accumulator's head position and ``op`` bounds the
    monotone measure from above.  Everything else is returned as a
    residual filter to apply to final answers.
    """
    pushed: List[PushedConstraint] = []
    residual: List[Literal] = []
    by_query_var: Dict[str, Accumulator] = {}
    for accumulator in accumulators:
        query_arg = query.args[accumulator.head_position]
        if isinstance(query_arg, Var):
            by_query_var[query_arg.name] = accumulator

    for literal in constraint_literals:
        normalized = _normalize_comparison(literal)
        if normalized is not None:
            var_name, op, bound = normalized
            accumulator = by_query_var.get(var_name)
            if accumulator is not None and accumulator.kind == "sum":
                pushed.append(PushedConstraint(accumulator, op, bound))
                # Keep it as residual too: the pushed version prunes
                # *partial* sums; the final sum still must be checked
                # (exit contributions can overshoot).
                residual.append(literal)
                continue
        residual.append(literal)
    return pushed, residual


def _normalize_comparison(literal: Literal) -> Optional[Tuple[str, str, float]]:
    """``V =< c`` / ``V < c`` / ``c >= V`` / ``c > V`` -> (V, op, c)."""
    if literal.negated or literal.arity != 2:
        return None
    left, right = literal.args
    if literal.name in {"=<", "<"} and isinstance(left, Var) and isinstance(right, Const):
        if isinstance(right.value, (int, float)):
            return left.name, literal.name, float(right.value)
    if literal.name in {">=", ">"} and isinstance(right, Var) and isinstance(left, Const):
        if isinstance(left.value, (int, float)):
            flipped = "=<" if literal.name == ">=" else "<"
            return right.name, flipped, float(left.value)
    return None

"""The unified chain-split decision (paper §2).

Two independent criteria force or suggest splitting a chain generating
path, and this module merges them into one decision the planner and
the evaluators consume:

1. **Finiteness** (§2.2, mandatory): if the path is not immediately
   evaluable under the query bindings — some functional predicate
   occurrence has infinitely many solutions — it *must* be split, with
   the non-evaluable literals delayed until the recursive call returns.
2. **Efficiency** (§2.1, cost-based): even a finitely evaluable path
   may contain a weak linkage (join expansion ratio above threshold);
   Algorithm 3.1's modified propagation rule then splits for
   performance.

"Obviously, no chain-split should be performed if the chain is a
down-chain": splitting only applies to the chain(s) actually being
descended with the query bindings, which is what the ``entry_bound``
derivation below encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal
from ..datalog.terms import Var, is_ground
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.database import Database
from ..analysis.chains import ChainPath, CompiledRecursion
from ..analysis.cost import CostModel, LinkageDecision
from ..analysis.finiteness import (
    NotFinitelyEvaluableError,
    PathSplit,
    is_immediately_evaluable,
    split_path,
)

__all__ = ["ChainSplitDecision", "decide_split"]


@dataclass
class ChainSplitDecision:
    """Outcome of the split analysis for one chain generating path.

    ``criterion`` is ``"none"`` (follow the whole chain),
    ``"finiteness"`` (split is mandatory for safe evaluation) or
    ``"efficiency"`` (split is chosen on cost grounds).
    """

    chain: ChainPath
    split: PathSplit
    criterion: str
    linkage_decisions: List[LinkageDecision] = field(default_factory=list)

    @property
    def is_split(self) -> bool:
        return self.split.needs_split

    def explain(self) -> str:
        lines = [f"criterion: {self.criterion}"]
        lines.append(
            "evaluable portion: "
            + (", ".join(str(l) for l in self.split.evaluable) or "(empty)")
        )
        lines.append(
            "delayed portion:   "
            + (", ".join(str(l) for l in self.split.delayed) or "(none)")
        )
        if self.split.buffered_vars:
            lines.append("buffered variables: " + ", ".join(self.split.buffered_vars))
        for decision in self.linkage_decisions:
            lines.append(f"  {decision}")
        return "\n".join(lines)


def entry_bound_names(compiled: CompiledRecursion, query: Literal) -> Set[str]:
    """Head-variable names bound by the query's ground arguments."""
    names: Set[str] = set()
    for arg, head_arg in zip(query.args, compiled.head_args):
        if is_ground(arg) and isinstance(head_arg, Var):
            names.add(head_arg.name)
    return names


def decide_split(
    database: Database,
    compiled: CompiledRecursion,
    query: Literal,
    chain: Optional[ChainPath] = None,
    cost_model: Optional[CostModel] = None,
    registry: Optional[BuiltinRegistry] = None,
    tracer=None,
) -> ChainSplitDecision:
    """Decide whether (and how) to split one chain of ``compiled`` for
    ``query``; defaults to the recursion's single generating chain.

    ``tracer`` (an :class:`~repro.observe.tracer.Tracer`) receives the
    decision as a ``split_decision`` event."""
    registry = registry if registry is not None else default_registry()
    if chain is None:
        chains = compiled.generating_chains()
        if len(chains) != 1:
            raise ValueError(
                "decide_split needs an explicit chain for multi-chain "
                f"recursions ({len(chains)} chains found)"
            )
        chain = chains[0]
    entry = entry_bound_names(compiled, query)

    # 1. Finiteness criterion — mandatory.
    if not is_immediately_evaluable(chain, entry, registry, database):
        split = split_path(
            chain, entry, compiled.recursive_literal, registry, database
        )
        decision = ChainSplitDecision(chain, split, "finiteness")
        if tracer is not None:
            tracer.split_decision(decision)
        return decision

    # 2. Efficiency criterion — cost-based (Algorithm 3.1).
    if cost_model is None:
        cost_model = CostModel(database, registry)
    split, decisions = cost_model.efficiency_split(chain, entry)
    criterion = "efficiency" if split.needs_split else "none"
    decision = ChainSplitDecision(chain, split, criterion, decisions)
    if tracer is not None:
        tracer.split_decision(decision)
    return decision

"""Existence checking — stop as soon as one witness is found.

The paper (§5) calls for integrating chain-split evaluation "with
existence checking and constraint-based query evaluation techniques to
achieve high performance": a boolean query (all arguments bound, or
the caller only needs *whether* an answer exists) should not compute
the full answer set.

Two realizations are provided:

* **top-down** — the SLD evaluator is already lazy; taking the first
  solution short-circuits naturally (and chain-split deferred selection
  keeps functional goals finite).
* **bottom-up** — the magic-sets rewrite runs under a
  ``stop_condition`` that aborts the semi-naive fixpoint the moment a
  matching tuple lands in the answer relation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datalog.literals import Literal
from ..datalog.parser import parse_query
from ..datalog.unify import unify_sequences
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.topdown import TopDownEvaluator
from .magic import MagicSetsEvaluator

__all__ = ["ExistenceChecker"]


class ExistenceChecker:
    """Boolean queries with early termination."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_steps: int = 5_000_000,
        budget=None,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.max_steps = max_steps
        # Optional resilience.Budget bounding the existence probe —
        # the circuit breaker's degraded path uses a tight one so even
        # "does any answer exist?" cannot blow up on a poisoned shape.
        self.budget = budget

    # ------------------------------------------------------------------
    def exists_top_down(self, query_source) -> Tuple[bool, Counters]:
        """First-witness SLD evaluation (lazy by construction)."""
        goals = self._goals(query_source)
        evaluator = TopDownEvaluator(
            self.database, self.registry, max_steps=self.max_steps,
            budget=self.budget,
        )
        for _ in evaluator.solve(goals):
            return True, evaluator.counters
        return False, evaluator.counters

    def exists_bottom_up(self, query_source) -> Tuple[bool, Counters]:
        """Magic-sets + semi-naive with an early-exit stop condition.

        The stop condition is checked after *each* newly derived answer
        tuple (not once per fixpoint round), so the abort happens
        mid-join as soon as the witness lands.
        """
        goals = self._goals(query_source)
        query = goals[0]
        if len(goals) > 1:
            raise ValueError(
                "bottom-up existence checking takes a single goal; "
                "fold constraints into the program or use exists_top_down"
            )

        def witnessed(answers) -> bool:
            return any(
                unify_sequences(query.args, row) is not None for row in answers
            )

        magic_evaluator = MagicSetsEvaluator(
            self.database, self.registry, budget=self.budget
        )
        answers, counters, _ = magic_evaluator.evaluate(
            query, stop_condition=witnessed
        )
        return len(answers) > 0, counters

    def exists(self, query_source) -> bool:
        """Convenience: top-down first (handles functional programs and
        constraints); falls back to bottom-up on step-budget concerns
        is left to callers who know their workload."""
        found, _ = self.exists_top_down(query_source)
        return found

    # ------------------------------------------------------------------
    def _goals(self, query_source) -> List[Literal]:
        if isinstance(query_source, Literal):
            return [query_source]
        if isinstance(query_source, str):
            return parse_query(query_source)
        return list(query_source)

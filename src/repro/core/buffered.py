"""Buffered chain-split evaluation (Algorithm 3.2).

The paper's second technique evaluates a *split* single-chain recursion
in two sweeps:

* **down phase** — iterate the *immediately evaluable portion* of the
  chain generating path from the query bindings, spawning the next
  level's recursive call; the variables shared with the delayed portion
  (the ``X_i`` of the paper) are **buffered** per derivation.
* **up phase** — once an exit rule applies, replay the buffered values
  innermost-first through the *delayed-evaluation portion*, completing
  each suspended call until the query's own call is answered.

"The algorithm is similar to counting except that the values of
variable ``X_i``'s are buffered in the processing of the being
evaluated portion of a chain generating path and reused in the
processing of its buffered portion" (Remark 3.1).

The implementation is set-oriented and memoizing: identical recursive
calls are shared (one node per distinct call-argument tuple), so on
DAG-shaped data each call is expanded once, and the up phase is a
fixpoint over the call graph, which also terminates on cyclic call
graphs for function-free recursions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Rule
from ..datalog.terms import Term, Var, is_ground
from ..datalog.unify import (
    Substitution,
    apply_substitution,
    unify,
    unify_sequences,
)
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.joins import evaluate_body, order_body
from ..engine.relation import Relation
from ..analysis.chains import ChainPath, CompiledRecursion
from ..analysis.finiteness import PathSplit, split_path

__all__ = ["BufferedChainEvaluator", "BufferedEvaluationError"]


class BufferedEvaluationError(ValueError):
    """The recursion/query does not fit buffered chain-split
    evaluation (not single-chain, or the split fails)."""


@dataclass
class _CallNode:
    """One (memoized) recursive call: its known argument bindings and,
    as the up phase progresses, its complete result rows."""

    key: Tuple[object, ...]
    bindings: Dict[str, Term]  # head-variable name -> ground value
    results: Set[Tuple[Term, ...]] = field(default_factory=set)
    #: (parent key, buffered substitution) pairs: how this call was
    #: reached and what the parent buffered while spawning it.
    parents: List[Tuple[Tuple[object, ...], Substitution]] = field(
        default_factory=list
    )


class BufferedChainEvaluator:
    """Algorithm 3.2 over a compiled single-chain recursion.

    Parameters mirror :class:`~repro.core.counting.CountingEvaluator`;
    the split itself defaults to the finiteness-based
    :func:`~repro.analysis.finiteness.split_path` but can be injected
    (e.g. an efficiency-based split from the cost model).
    """

    def __init__(
        self,
        database: Database,
        compiled: CompiledRecursion,
        registry: Optional[BuiltinRegistry] = None,
        split: Optional[PathSplit] = None,
        max_depth: int = 100_000,
        memoize: bool = True,
        idb_solver=None,
        idb_finite=None,
        tracer=None,
        profiler=None,
        budget=None,
    ):
        self.database = database
        self.compiled = compiled
        self.registry = registry if registry is not None else default_registry()
        self.max_depth = max_depth
        # memoize=False disables call sharing (each expansion gets a
        # private node) — the ablation showing why the memoized call
        # graph matters on DAG data and cyclic data.
        self.memoize = memoize
        # Nested chain-split evaluation (paper §4.1): inner recursions
        # occurring in the chain path are solved by this callback, and
        # their finite evaluability is judged by `idb_finite`.
        self.idb_solver = idb_solver
        self.idb_finite = idb_finite
        # Optional observe.Tracer: one chain_down event per down-phase
        # level, one chain_up event for the whole up phase.
        self.tracer = tracer
        # Optional profile.SpanProfiler: stage spans per down level,
        # for the exit phase and for the up phase.
        self.profiler = profiler
        # Optional resilience.Budget: checked per descent level, per
        # buffered result row, and per streamed substitution.
        self.budget = budget
        self._injected_split = split
        chains = compiled.generating_chains()
        if len(chains) != 1:
            raise BufferedEvaluationError(
                f"buffered evaluation requires a single-chain recursion; "
                f"{compiled.predicate} has {len(chains)} generating chains"
            )
        self.chain = chains[0]
        if not all(isinstance(a, Var) for a in compiled.head_args):
            raise BufferedEvaluationError(
                "buffered evaluation requires a rectified recursion"
            )

    # ------------------------------------------------------------------
    def evaluate(self, query: Literal) -> Tuple[Relation, Counters]:
        """Answers as a relation over the query arguments + counters."""
        if query.predicate != self.compiled.predicate:
            raise BufferedEvaluationError(
                f"query {query} is not on {self.compiled.predicate}"
            )
        counters = Counters()
        profiler = self.profiler
        run_span = (
            profiler.begin("evaluate", "buffered_chain")
            if profiler is not None
            else None
        )
        try:
            return self._evaluate(query, counters)
        finally:
            if profiler is not None:
                profiler.end(run_span, derived=counters.derived_tuples)

    def _evaluate(
        self, query: Literal, counters: Counters
    ) -> Tuple[Relation, Counters]:
        profiler = self.profiler
        if profiler is not None:
            # The split + body ordering is planning-grade work; give it
            # its own stage rather than container self time.
            setup_span = profiler.begin("stage", "chain_setup")
        head_args = self.compiled.head_args
        rec_args = self.compiled.rec_args
        rec_literal = self.compiled.recursive_literal
        lookup = self.database.get

        bound_positions = [
            i for i, arg in enumerate(query.args) if is_ground(arg)
        ]
        entry_bound = {head_args[p].name for p in bound_positions}

        split = self._injected_split
        if split is None:
            if self.idb_finite is not None:
                split = split_path(
                    self.chain,
                    entry_bound,
                    rec_literal,
                    self.registry,
                    self.database,
                    idb_finite=self.idb_finite,
                )
            else:
                split = split_path(
                    self.chain,
                    entry_bound,
                    rec_literal,
                    self.registry,
                    self.database,
                )
        evaluable_order = order_body(
            split.evaluable, self.registry, initially_bound=entry_bound
        )
        delayed_bound = (
            entry_bound
            | {v.name for lit in split.evaluable for v in lit.variables()}
            | {v.name for v in rec_literal.variables()}
        )
        delayed_order = order_body(
            split.delayed, self.registry, initially_bound=delayed_bound
        )
        # Variables the delayed portion needs from the down phase.
        buffered_names = set(split.buffered_vars)

        # ---- down phase -----------------------------------------------
        root_bindings = {
            head_args[p].name: query.args[p] for p in bound_positions
        }
        root = _CallNode(self._call_key(root_bindings), root_bindings)
        calls: Dict[Tuple[object, ...], _CallNode] = {root.key: root}
        frontier: List[_CallNode] = [root]
        tracer = self.tracer
        depth = 0
        if profiler is not None:
            profiler.end(setup_span)
        while frontier:
            depth += 1
            if depth > self.max_depth:
                raise BufferedEvaluationError(
                    f"down phase exceeded max depth {self.max_depth}"
                )
            if self.budget is not None:
                self.budget.check_round(depth, counters)
            next_frontier: List[_CallNode] = []
            if profiler is not None:
                level_span = profiler.begin("stage", f"chain_down L{depth}")
            # One aggregated stage-count vector per level: the frontier
            # nodes all evaluate the same ordered body.
            level_counts = (
                [0] * len(evaluable_order) if tracer is not None else None
            )
            for node in frontier:
                seed: Substitution = dict(node.bindings)
                for solution in evaluate_body(
                    evaluable_order,
                    lookup,
                    self.registry,
                    seed,
                    counters,
                    idb_solver=self.idb_solver,
                    stage_counts=level_counts,
                    budget=self.budget,
                ):
                    child_bindings: Dict[str, Term] = {}
                    for p, rec_arg in enumerate(rec_args):
                        value = apply_substitution(rec_arg, solution)
                        if is_ground(value):
                            child_bindings[head_args[p].name] = value
                    buffered = {
                        name: apply_substitution(Var(name), solution)
                        for name in buffered_names
                    }
                    counters.buffered_values += len(buffered)
                    child_key = self._call_key(child_bindings)
                    if not self.memoize:
                        # Unique key per expansion: no sharing.
                        child_key = (*child_key, ("#", len(calls)))
                    child = calls.get(child_key)
                    if child is None:
                        child = _CallNode(child_key, child_bindings)
                        calls[child_key] = child
                        next_frontier.append(child)
                    child.parents.append((node.key, {**solution, **buffered}))
            if profiler is not None:
                profiler.end(
                    level_span, seeds=len(frontier), spawned=len(next_frontier)
                )
            if tracer is not None:
                tracer.body_evaluated(
                    "chain_down",
                    evaluable_order,
                    level_counts,
                    seeds=len(frontier),
                    initially_bound=sorted(entry_bound),
                    depth=depth,
                    spawned=len(next_frontier),
                )
            frontier = next_frontier

        # ---- exit phase -------------------------------------------------
        if profiler is not None:
            exit_span = profiler.begin("stage", "chain_exit")
        changed: List[_CallNode] = []
        for node in calls.values():
            for row in self._exit_rows(node, counters):
                if row not in node.results:
                    node.results.add(row)
            if node.results:
                changed.append(node)
        if profiler is not None:
            profiler.end(
                exit_span, calls=len(calls), with_exit_rows=len(changed)
            )
        if tracer is not None:
            tracer.phase(
                "chain_exit", calls=len(calls), with_exit_rows=len(changed)
            )

        # ---- up phase: propagate results through the delayed portion ---
        if profiler is not None:
            up_span = profiler.begin("stage", "chain_up")
        head_names = [a.name for a in head_args]
        pending = list(changed)
        processed_pairs: Set[Tuple[Tuple[object, ...], Tuple[Term, ...]]] = set()
        up_counts = [0] * len(delayed_order) if tracer is not None else None
        resumed_calls = 0
        up_derived_before = counters.derived_tuples
        while pending:
            node = pending.pop()
            for result_row in list(node.results):
                marker = (node.key, result_row)
                if marker in processed_pairs:
                    continue
                processed_pairs.add(marker)
                for parent_key, parent_solution in node.parents:
                    parent = calls[parent_key]
                    resumed: Optional[Substitution] = dict(parent_solution)
                    for rec_arg, value in zip(rec_args, result_row):
                        resumed = unify(rec_arg, value, resumed)
                        if resumed is None:
                            break
                    if resumed is None:
                        continue
                    resumed_calls += 1
                    for solution in evaluate_body(
                        delayed_order,
                        lookup,
                        self.registry,
                        resumed,
                        counters,
                        idb_solver=self.idb_solver,
                        stage_counts=up_counts,
                        budget=self.budget,
                    ):
                        row = tuple(
                            apply_substitution(Var(name), solution)
                            for name in head_names
                        )
                        if not all(is_ground(v) for v in row):
                            continue
                        if row not in parent.results:
                            parent.results.add(row)
                            counters.derived_tuples += 1
                            if self.budget is not None:
                                self.budget.check_tuple(counters)
                            pending.append(parent)
        if profiler is not None:
            profiler.end(
                up_span,
                resumed=resumed_calls,
                derived=counters.derived_tuples - up_derived_before,
            )
        if tracer is not None and delayed_order:
            tracer.body_evaluated(
                "chain_up",
                delayed_order,
                up_counts,
                seeds=resumed_calls,
                initially_bound=sorted(delayed_bound),
                derived=counters.derived_tuples - up_derived_before,
            )

        # ---- answers -----------------------------------------------------
        answers = Relation(query.name, query.arity)
        for row in root.results:
            if unify_sequences(query.args, row) is not None:
                answers.add(row)
        return answers, counters

    # ------------------------------------------------------------------
    def _exit_rows(
        self, node: _CallNode, counters: Counters
    ) -> Iterator[Tuple[Term, ...]]:
        """Complete head rows obtainable from the exit rules for a call
        with ``node.bindings`` known, streamed as they are derived."""
        head_args = self.compiled.head_args
        lookup = self.database.get
        call_args = [
            node.bindings.get(arg.name, Var(f"_Q{p}"))
            for p, arg in enumerate(head_args)
        ]
        # Ground exit facts live in the EDB (the loader stores ground
        # heads as facts), so match them alongside the exit rules.
        stored = lookup(self.compiled.predicate)
        if stored is not None:
            from ..engine.joins import literal_solutions

            fact_literal = Literal(self.compiled.predicate.name, call_args)
            for solution in literal_solutions(fact_literal, stored, {}, counters):
                row = tuple(
                    apply_substitution(arg, solution) for arg in call_args
                )
                if all(is_ground(v) for v in row):
                    yield row
        for exit_rule in self.compiled.exit_rules:
            unified = unify_sequences(exit_rule.head.args, call_args)
            if unified is None:
                continue
            bound_names = {
                name
                for name, value in unified.items()
                if is_ground(value)
            }
            exit_order = order_body(
                exit_rule.body, self.registry, initially_bound=bound_names
            )
            for solution in evaluate_body(
                exit_order,
                lookup,
                self.registry,
                unified,
                counters,
                idb_solver=self.idb_solver,
                budget=self.budget,
            ):
                row = tuple(
                    apply_substitution(arg, solution)
                    for arg in exit_rule.head.args
                )
                if all(is_ground(v) for v in row):
                    yield row

    @staticmethod
    def _call_key(bindings: Dict[str, Term]) -> Tuple[object, ...]:
        return tuple(sorted(bindings.items(), key=lambda kv: kv[0]))

"""The paper's contribution: chain-split evaluation techniques.

Magic sets (classic + chain-split, Algorithm 3.1), counting, buffered
chain-split evaluation (Algorithm 3.2), partial chain-split evaluation
with constraint pushing (Algorithm 3.3), transitive-closure baselines,
the unified split decision, and the query planner tying it together.
"""

from .buffered import BufferedChainEvaluator, BufferedEvaluationError
from .counting import CountingError, CountingEvaluator
from .existence import ExistenceChecker
from .magic import MagicProgram, MagicSetsEvaluator, chain_split_hook, magic_transform
from .nested import NestedChainEvaluator, NestedEvaluationError
from .partial import PartialChainEvaluator, PartialEvaluationError
from .planner import Planner, PlanningError, QueryPlan, Strategy
from .pushing import (
    Accumulator,
    ConstraintPushingError,
    PushedConstraint,
    detect_accumulators,
    push_constraints,
)
from .split import ChainSplitDecision, decide_split
from .transitive import (
    compose_relations,
    cross_product,
    reachable_from,
    smart_transitive_closure,
    transitive_closure,
)

__all__ = [
    "Accumulator",
    "BufferedChainEvaluator",
    "BufferedEvaluationError",
    "ChainSplitDecision",
    "ConstraintPushingError",
    "CountingError",
    "CountingEvaluator",
    "ExistenceChecker",
    "MagicProgram",
    "MagicSetsEvaluator",
    "NestedChainEvaluator",
    "NestedEvaluationError",
    "PartialChainEvaluator",
    "PartialEvaluationError",
    "Planner",
    "PlanningError",
    "PushedConstraint",
    "QueryPlan",
    "Strategy",
    "chain_split_hook",
    "compose_relations",
    "cross_product",
    "decide_split",
    "detect_accumulators",
    "magic_transform",
    "push_constraints",
    "reachable_from",
    "smart_transitive_closure",
    "transitive_closure",
]

"""Transitive-closure algorithms (ref [10]) — the single-chain baseline.

The paper's framing: a single-chain recursion is evaluated efficiently
by a transitive closure algorithm, a multi-chain recursion by magic
sets or counting.  These are the baselines chain-split evaluation is
measured against, and §1.1's negative result — merging multiple chains
into one cross-product chain so a TC algorithm applies is "terribly
inefficient" — is demonstrated by running these algorithms on merged
relations in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.terms import Term
from ..engine.counters import Counters
from ..engine.relation import Relation, Row

__all__ = [
    "transitive_closure",
    "smart_transitive_closure",
    "reachable_from",
    "compose_relations",
    "cross_product",
]


def compose_relations(left: Relation, right: Relation, counters: Optional[Counters] = None) -> Relation:
    """Relational composition left(a,b) x right(b,c) -> (a,c)."""
    result = Relation(f"{left.name}*{right.name}", 2)
    for a, b in left:
        if counters is not None:
            counters.join_probes += 1
        for _, c in right.lookup((0,), (b,)):
            if result.add((a, c)) and counters is not None:
                counters.derived_tuples += 1
    return result


def transitive_closure(relation: Relation, counters: Optional[Counters] = None) -> Relation:
    """Semi-naive transitive closure of a binary relation."""
    if relation.arity != 2:
        raise ValueError("transitive closure requires a binary relation")
    counters = counters if counters is not None else Counters()
    closure = relation.copy(f"{relation.name}_tc")
    delta = relation.copy(f"{relation.name}_delta")
    while len(delta):
        counters.iterations += 1
        new_delta = Relation("delta", 2)
        for a, b in delta:
            if counters is not None:
                counters.join_probes += 1
            for _, c in relation.lookup((0,), (b,)):
                pair = (a, c)
                if closure.add(pair):
                    counters.derived_tuples += 1
                    new_delta.add(pair)
                else:
                    counters.duplicate_tuples += 1
        delta = new_delta
    return closure


def smart_transitive_closure(
    relation: Relation, counters: Optional[Counters] = None
) -> Relation:
    """Logarithmic ("smart") TC by repeated squaring: computes
    R ∪ R² ∪ R⁴ ... in O(log diameter) composition rounds."""
    if relation.arity != 2:
        raise ValueError("transitive closure requires a binary relation")
    counters = counters if counters is not None else Counters()
    closure = relation.copy(f"{relation.name}_tc")
    while True:
        counters.iterations += 1
        grew = False
        # Square: join the current closure with itself.  Path lengths
        # double each round, so rounds are O(log diameter).
        for a, b in list(closure):
            counters.join_probes += 1
            for _, c in closure.lookup((0,), (b,)):
                if closure.add((a, c)):
                    counters.derived_tuples += 1
                    grew = True
                else:
                    counters.duplicate_tuples += 1
        if not grew:
            break
    return closure


def reachable_from(
    relation: Relation,
    seeds: Iterable[Term],
    counters: Optional[Counters] = None,
    max_depth: Optional[int] = None,
) -> Relation:
    """Single-source closure: pairs (s, t) with t reachable from a seed
    s — what magic sets computes for a bound-first-argument TC query."""
    if relation.arity != 2:
        raise ValueError("reachable_from requires a binary relation")
    counters = counters if counters is not None else Counters()
    result = Relation(f"{relation.name}_reach", 2)
    frontier: List[Tuple[Term, Term]] = []
    for seed in seeds:
        if counters is not None:
            counters.join_probes += 1
        for _, target in relation.lookup((0,), (seed,)):
            if result.add((seed, target)):
                counters.derived_tuples += 1
                frontier.append((seed, target))
    depth = 1
    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        counters.iterations += 1
        next_frontier: List[Tuple[Term, Term]] = []
        for source, middle in frontier:
            if counters is not None:
                counters.join_probes += 1
            for _, target in relation.lookup((0,), (middle,)):
                if result.add((source, target)):
                    counters.derived_tuples += 1
                    next_frontier.append((source, target))
                else:
                    counters.duplicate_tuples += 1
        frontier = next_frontier
        depth += 1
    return result


def cross_product(
    left: Relation, right: Relation, counters: Optional[Counters] = None
) -> Relation:
    """The merged-chain relation of §1.1: pairing two binary relations
    that share no variables.  Arity 4: (a, b, c, d) for left(a,b),
    right(c,d).  Its size is |left| x |right| — the reason merging
    chains and running TC on the merge is hopeless."""
    result = Relation(f"{left.name}x{right.name}", 4)
    for a, b in left:
        for c, d in right:
            if result.add((a, b, c, d)) and counters is not None:
                counters.derived_tuples += 1
    return result

"""The query planner: analysis -> strategy -> execution.

This is the library's main entry point, mirroring the architecture the
paper sketches for LogicBase (§5): a *rule compiler* (classification,
rectification, chain compilation) feeding a *query evaluator* that
integrates chain-following, chain-split and constraint-based
evaluation.

Strategy selection:

====================  =============================================
recursion class        strategy
====================  =============================================
non-recursive          semi-naive bottom-up (magic when bound args)
linear, 1 chain        chain evaluation — following, buffered
                       chain-split, or partial chain-split with
                       constraint pushing, per the split decision
linear, n chains       magic sets; chain-split magic sets when the
                       cost model finds a weak linkage; counting
                       when the query fully binds one chain and the
                       data is acyclic
nested linear,
nonlinear              top-down with deferred (chain-split) goal
                       selection — the per-tuple realization of the
                       same split (paper §4)
mutual                 magic sets
====================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import COMPARISON_PREDICATES, Literal, Predicate
from ..datalog.parser import parse_query
from ..datalog.rules import Program
from ..datalog.terms import Struct, Term, Var, is_ground
from ..datalog.unify import Substitution, apply_substitution, unify_sequences
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.relation import Relation
from ..engine.seminaive import SemiNaiveEvaluator
from ..engine.topdown import TopDownEvaluator
from ..analysis.chains import (
    CompilationError,
    CompiledRecursion,
    RecursionClass,
    classify_recursion,
    is_bounded_recursion,
)
from ..analysis.cost import CostModel
from ..analysis.normalize import NormalizedProgram
from .buffered import BufferedChainEvaluator
from .counting import CountingError, CountingEvaluator
from .magic import MagicSetsEvaluator
from .nested import NestedChainEvaluator, NestedEvaluationError
from .partial import PartialChainEvaluator, PartialEvaluationError
from .pushing import detect_accumulators, push_constraints
from .split import ChainSplitDecision, decide_split

__all__ = [
    "Planner",
    "QueryPlan",
    "PlanningError",
    "Strategy",
    "adornment_key",
    "plan_cache_key",
]


class PlanningError(ValueError):
    """The planner cannot produce a plan for the query."""


def adornment_key(query: Literal) -> str:
    """The query's bound/free adornment: ``b`` per ground argument,
    ``f`` otherwise — e.g. ``sg(ann, Y)`` adorns to ``"bf"``.

    Strategy selection depends on *which* arguments are bound, not on
    the bound values, so this string (not the constants) keys plan
    reuse across queries.
    """
    return "".join("b" if is_ground(arg) else "f" for arg in query.args)


def _term_shape(term: Term, var_ids: Dict[str, int]):
    """A hashable skeleton of ``term`` with variables canonicalized by
    first occurrence and ground subterms collapsed to a single mark."""
    if isinstance(term, Var):
        if term.name not in var_ids:
            var_ids[term.name] = len(var_ids)
        return ("v", var_ids[term.name])
    if is_ground(term):
        return ("g",)
    assert isinstance(term, Struct)
    return ("s", term.functor, tuple(_term_shape(a, var_ids) for a in term.args))


def plan_cache_key(
    query: Literal, constraints: Sequence[Literal] = ()
) -> Tuple[Predicate, Tuple[object, ...], Tuple[object, ...]]:
    """A hashable key under which a :class:`QueryPlan` may be reused.

    Two queries share a key when they have the same predicate, the
    same bound/free argument shape (constants masked, variables
    canonicalized by first occurrence across query and constraints)
    and the same constraint shape.  Every strategy returns the same
    answer set, so reusing a plan across different bound *values* is
    always sound; only the cost-model tie-breaks could differ.
    """
    var_ids: Dict[str, int] = {}
    args_shape = tuple(_term_shape(arg, var_ids) for arg in query.args)
    constraint_shape = tuple(
        (c.name, c.negated, tuple(_term_shape(a, var_ids) for a in c.args))
        for c in constraints
    )
    return (query.predicate, args_shape, constraint_shape)


class Strategy:
    """Symbolic strategy names, used in plans and benchmark tables."""

    SEMI_NAIVE = "semi_naive"
    MAGIC = "magic_sets"
    MAGIC_SPLIT = "chain_split_magic_sets"
    COUNTING = "counting"
    CHAIN_FOLLOW = "chain_following"
    BUFFERED = "buffered_chain_split"
    PARTIAL = "partial_chain_split"
    NESTED = "nested_chain_split"
    TOP_DOWN = "top_down_deferred"


@dataclass
class QueryPlan:
    """An executable plan: the chosen strategy plus its inputs."""

    query: Literal
    constraints: List[Literal]
    strategy: str
    recursion_class: str
    compiled: Optional[CompiledRecursion] = None
    split_decision: Optional[ChainSplitDecision] = None
    notes: List[str] = field(default_factory=list)

    def rebind(self, query: Literal, constraints: List[Literal]) -> "QueryPlan":
        """This plan re-instantiated for a same-shaped query.

        The strategy choice, compiled chain form and split decision
        depend only on the plan-cache key (predicate, adornment,
        constraint shape), so a cached plan serves any query sharing
        the key once the literal and constraints are swapped in.
        """
        return QueryPlan(
            query,
            constraints,
            self.strategy,
            self.recursion_class,
            self.compiled,
            self.split_decision,
            list(self.notes),
        )

    def explain(self) -> str:
        lines = [
            f"query:     {self.query}",
            f"class:     {self.recursion_class}",
            f"strategy:  {self.strategy}",
        ]
        if self.constraints:
            lines.append(
                "constraints: " + ", ".join(str(c) for c in self.constraints)
            )
        if self.split_decision is not None:
            lines.append(self.split_decision.explain())
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


class Planner:
    """Plan and execute queries against a deductive database."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        cost_model: Optional[CostModel] = None,
        max_depth: int = 10_000,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(database, self.registry)
        )
        self.max_depth = max_depth
        # Optional observe.Tracer; when set, planning emits strategy/
        # split-decision events and every executor hands the tracer to
        # its evaluator.  None keeps the fast path everywhere.
        self.tracer = None
        # Optional profile.SpanProfiler, same discipline: planning and
        # execution record spans, executors hand it to their evaluator.
        self.profiler = None
        # Optional resilience.Budget, installed per query by callers
        # (the session does this under its lock); every executor hands
        # it to its evaluator.  None keeps the fast path.
        self.budget = None
        self._normalized = NormalizedProgram(database.program, self.registry)
        self._analysis_idb_version = database.idb_version
        # The rectified database shares EDB relations with the original.
        self._rect_db = Database()
        self._rect_db.program = self._normalized.program
        self._rect_db.relations = database.relations
        self._rect_db.finiteness_constraints = database.finiteness_constraints

    def refresh(self) -> bool:
        """Re-normalize if rules were added since the last analysis.

        The rectification/classification snapshot is expensive, so it
        is only rebuilt when the database's IDB version moved; EDB
        (fact) changes need no refresh because the rectified database
        shares the live relation catalog.  Returns True when a rebuild
        happened.
        """
        if self._analysis_idb_version == self.database.idb_version:
            return False
        self._normalized = NormalizedProgram(self.database.program, self.registry)
        self._rect_db.program = self._normalized.program
        self._analysis_idb_version = self.database.idb_version
        return True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(self, query_source) -> QueryPlan:
        """Build a plan for a query given as source text or goal list.

        The first non-comparison goal is the query literal; remaining
        comparison goals become constraints (candidates for pushing).
        """
        profiler = self.profiler
        plan_span = (
            profiler.begin("plan", "plan") if profiler is not None else None
        )
        try:
            plan = self._plan_inner(query_source)
        except BaseException:
            if profiler is not None:
                profiler.end(plan_span)
            raise
        if profiler is not None:
            profiler.end(
                plan_span, query=str(plan.query), strategy=plan.strategy
            )
        if self.tracer is not None:
            self.tracer.strategy_chosen(
                str(plan.query), plan.strategy, plan.recursion_class, plan.notes
            )
        return plan

    def _plan_inner(self, query_source) -> QueryPlan:
        self.refresh()
        query, constraints = self._parse(query_source)
        predicate = query.predicate
        if predicate not in self._rect_db.program.head_predicates():
            if self.database.get(predicate) is not None:
                return QueryPlan(
                    query, constraints, Strategy.SEMI_NAIVE, RecursionClass.NON_RECURSIVE
                )
            raise PlanningError(f"unknown predicate {predicate}")

        recursion_class = self._normalized.classify(predicate)
        functional = self._closure_is_functional(predicate)

        if recursion_class == RecursionClass.NON_RECURSIVE:
            if functional:
                # Functional predicates in the closure (constructors,
                # arithmetic, negation over them) make blind bottom-up
                # evaluation unsafe; evaluate top-down with deferred
                # (chain-split) goal selection instead.
                return QueryPlan(
                    query, constraints, Strategy.TOP_DOWN, recursion_class
                )
            strategy = (
                Strategy.MAGIC
                if any(is_ground(a) for a in query.args)
                else Strategy.SEMI_NAIVE
            )
            return QueryPlan(query, constraints, strategy, recursion_class)

        if recursion_class == RecursionClass.LINEAR:
            return self._plan_linear(query, constraints, recursion_class, functional)

        if recursion_class == RecursionClass.NESTED_LINEAR:
            return QueryPlan(
                query,
                constraints,
                Strategy.NESTED,
                recursion_class,
                notes=[
                    "nested linear recursion: composed buffered chain-split "
                    "evaluators (paper §4.1); top-down fallback at runtime"
                ],
            )
        if functional or recursion_class == RecursionClass.NONLINEAR:
            return QueryPlan(
                query,
                constraints,
                Strategy.TOP_DOWN,
                recursion_class,
                notes=[
                    "nonlinear/functional program: chain-split realized by "
                    "deferred goal selection (paper §4)"
                ],
            )

        # Mutual recursion.
        return QueryPlan(query, constraints, Strategy.MAGIC, recursion_class)

    def execute(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        """Run a plan; answers as a relation over the query arguments."""
        self.refresh()
        dispatch = {
            Strategy.SEMI_NAIVE: self._run_semi_naive,
            Strategy.MAGIC: self._run_magic,
            Strategy.MAGIC_SPLIT: self._run_magic_split,
            Strategy.COUNTING: self._run_counting,
            Strategy.CHAIN_FOLLOW: self._run_buffered,
            Strategy.BUFFERED: self._run_buffered,
            Strategy.PARTIAL: self._run_partial,
            Strategy.NESTED: self._run_nested,
            Strategy.TOP_DOWN: self._run_top_down,
        }
        runner = dispatch.get(plan.strategy)
        if runner is None:
            raise PlanningError(f"no executor for strategy {plan.strategy}")
        profiler = self.profiler
        exec_span = (
            profiler.begin("query", f"execute {plan.strategy}")
            if profiler is not None
            else None
        )
        try:
            answers, counters = runner(plan)
            answers = self._apply_residual_constraints(plan, answers, counters)
        finally:
            if profiler is not None:
                profiler.end(exec_span, strategy=plan.strategy)
        return answers, counters

    def answer(self, query_source) -> Relation:
        """Plan + execute in one call."""
        plan = self.plan(query_source)
        answers, _ = self.execute(plan)
        return answers

    def answer_rows(self, query_source) -> List[Tuple[Term, ...]]:
        """Answers as a sorted list of rows (stable for tests/demos)."""
        return sorted(self.answer(query_source).rows(), key=str)

    def query(self, query_source) -> List[Dict[str, Term]]:
        """Answers as variable bindings: one dict per answer, keyed by
        the query's variable names, sorted for stability."""
        plan = self.plan(query_source)
        answers, _ = self.execute(plan)
        bindings: List[Dict[str, Term]] = []
        for row in sorted(answers.rows(), key=str):
            binding: Dict[str, Term] = {}
            for arg, value in zip(plan.query.args, row):
                if isinstance(arg, Var):
                    binding[arg.name] = value
            bindings.append(binding)
        return bindings

    # ------------------------------------------------------------------
    # Planning details
    # ------------------------------------------------------------------
    def _closure_is_functional(self, predicate: Predicate) -> bool:
        """True when the rectified definition of ``predicate``
        (transitively) uses functional builtins or negation — the
        signal that bottom-up set-oriented evaluation needs guards a
        plain magic rewrite does not provide."""
        program = self._rect_db.program
        graph = program.dependency_graph()
        idb = program.head_predicates()
        seen = {predicate}
        stack = [predicate]
        while stack:
            current = stack.pop()
            for rule in program.rules_for(current):
                for literal in rule.body:
                    if literal.negated:
                        return True
                    builtin = self.registry.get(literal.predicate)
                    if (
                        builtin is not None
                        and not literal.is_comparison()
                        and literal.name != "="
                    ):
                        # cons / sum / is / ... : infinite relations.
                        return True
                    if literal.predicate in idb and literal.predicate not in seen:
                        seen.add(literal.predicate)
                        stack.append(literal.predicate)
        return False

    def _parse(self, query_source) -> Tuple[Literal, List[Literal]]:
        if isinstance(query_source, Literal):
            return query_source, []
        if isinstance(query_source, str):
            goals = parse_query(query_source)
        else:
            goals = list(query_source)
        if not goals:
            raise PlanningError("empty query")
        main: Optional[Literal] = None
        constraints: List[Literal] = []
        for goal in goals:
            if main is None and not goal.is_comparison():
                main = goal
            else:
                constraints.append(goal)
        if main is None:
            raise PlanningError("query has no non-comparison goal")
        return main, constraints

    def _plan_linear(
        self,
        query: Literal,
        constraints: List[Literal],
        recursion_class: str,
        functional: bool = False,
    ) -> QueryPlan:
        try:
            compiled = self._normalized.compiled(query.predicate)
        except CompilationError as exc:
            fallback = Strategy.TOP_DOWN if functional else Strategy.MAGIC
            return QueryPlan(
                query,
                constraints,
                fallback,
                recursion_class,
                notes=[f"chain compilation failed ({exc}); {fallback} fallback"],
            )
        chains = compiled.generating_chains()

        if is_bounded_recursion(compiled):
            # A bounded recursion is equivalent to a nonrecursive rule
            # set; plain (magic-guarded) evaluation converges in a
            # constant number of rounds.
            strategy = (
                Strategy.MAGIC
                if any(is_ground(a) for a in query.args)
                else Strategy.SEMI_NAIVE
            )
            return QueryPlan(
                query,
                constraints,
                strategy,
                recursion_class,
                compiled,
                notes=["bounded recursion (no head-to-recursive-call linkage)"],
            )

        if len(chains) == 1:
            decision = decide_split(
                self._rect_db, compiled, query, chains[0], self.cost_model,
                self.registry, tracer=self.tracer,
            )
            if not decision.is_split:
                return QueryPlan(
                    query,
                    constraints,
                    Strategy.CHAIN_FOLLOW,
                    recursion_class,
                    compiled,
                    decision,
                )
            accumulators = detect_accumulators(compiled, decision.split)
            non_acc = [
                lit
                for lit in decision.split.delayed
                if all(lit is not acc.literal for acc in accumulators)
            ]
            pushed, _ = push_constraints(constraints, query, accumulators)
            if not non_acc and (pushed or accumulators):
                return QueryPlan(
                    query,
                    constraints,
                    Strategy.PARTIAL,
                    recursion_class,
                    compiled,
                    decision,
                    notes=[f"pushed constraints: {[str(c) for c in pushed]}"]
                    if pushed
                    else [],
                )
            if decision.criterion == "efficiency":
                # Function-free weak linkage: Algorithm 3.1 — the
                # chain-split magic sets rewriting.
                return QueryPlan(
                    query,
                    constraints,
                    Strategy.MAGIC_SPLIT,
                    recursion_class,
                    compiled,
                    decision,
                )
            return QueryPlan(
                query, constraints, Strategy.BUFFERED, recursion_class, compiled, decision
            )

        # Multi-chain: counting if applicable, else (chain-split) magic.
        if len(chains) >= 2:
            bound = {i for i, a in enumerate(query.args) if is_ground(a)}
            if any(
                set(c.head_positions) and set(c.head_positions) <= bound
                for c in chains
            ):
                return QueryPlan(
                    query,
                    constraints,
                    Strategy.COUNTING,
                    recursion_class,
                    compiled,
                    notes=[
                        f"{len(chains)}-chain recursion with one chain "
                        "fully bound"
                    ],
                )
        return QueryPlan(
            query, constraints, Strategy.MAGIC, recursion_class, compiled
        )

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _run_semi_naive(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        result = SemiNaiveEvaluator(
            self.database,
            self.registry,
            tracer=self.tracer,
            profiler=self.profiler,
            budget=self.budget,
        ).evaluate()
        return self._filter(plan.query, result.relations), result.counters

    def _run_magic(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        evaluator = MagicSetsEvaluator(
            self.database,
            self.registry,
            tracer=self.tracer,
            profiler=self.profiler,
            budget=self.budget,
        )
        answers, counters, _ = evaluator.evaluate(plan.query)
        return answers, counters

    def _run_magic_split(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        # Supplementary predicates share the propagated prefix between
        # the magic and answer rules; together with the chain-split
        # propagation rule this is the cheapest scsg-style plan by a
        # wide margin (see bench_ablation A5).
        evaluator = MagicSetsEvaluator(
            self.database,
            self.registry,
            cost_model=self.cost_model,
            chain_split=True,
            supplementary=True,
            tracer=self.tracer,
            profiler=self.profiler,
            budget=self.budget,
        )
        answers, counters, _ = evaluator.evaluate(plan.query)
        return answers, counters

    def _run_counting(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        try:
            evaluator = CountingEvaluator(
                self._rect_db,
                plan.compiled,
                self.registry,
                max_depth=self.max_depth,
                tracer=self.tracer,
                profiler=self.profiler,
                budget=self.budget,
            )
            return evaluator.evaluate(plan.query)
        except CountingError:
            # Cyclic data or inapplicable shape: magic sets fallback.
            return self._run_magic(plan)

    def _run_buffered(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        evaluator = BufferedChainEvaluator(
            self._rect_db,
            plan.compiled,
            self.registry,
            split=plan.split_decision.split if plan.split_decision else None,
            max_depth=self.max_depth,
            tracer=self.tracer,
            profiler=self.profiler,
            budget=self.budget,
        )
        return evaluator.evaluate(plan.query)

    def _run_partial(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        try:
            evaluator = PartialChainEvaluator(
                self._rect_db,
                plan.compiled,
                self.registry,
                constraints=plan.constraints,
                split=plan.split_decision.split if plan.split_decision else None,
                max_depth=self.max_depth,
                tracer=self.tracer,
                profiler=self.profiler,
                budget=self.budget,
            )
            return evaluator.evaluate(plan.query)
        except PartialEvaluationError:
            return self._run_buffered(plan)

    def _run_nested(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        try:
            evaluator = NestedChainEvaluator(
                self._rect_db,
                plan.query.predicate,
                self.registry,
                max_depth=self.max_depth,
                budget=self.budget,
            )
            return evaluator.evaluate(plan.query)
        except (NestedEvaluationError, ValueError):
            # BudgetExceeded is a RuntimeError and deliberately NOT
            # caught here: a blown budget must surface, not trigger a
            # second (equally doomed) top-down attempt.
            return self._run_top_down(plan)

    def _run_top_down(self, plan: QueryPlan) -> Tuple[Relation, Counters]:
        evaluator = TopDownEvaluator(
            self._rect_db, self.registry, selection="deferred",
            budget=self.budget,
        )
        answers = Relation(plan.query.name, plan.query.arity)
        goals = [plan.query, *plan.constraints]
        for solution in evaluator.solve(goals):
            row = tuple(
                apply_substitution(arg, solution) for arg in plan.query.args
            )
            if all(is_ground(v) for v in row):
                answers.add(row)
        return answers, evaluator.counters

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _filter(
        self, query: Literal, relations: Dict[Predicate, Relation]
    ) -> Relation:
        profiler = self.profiler
        filter_span = (
            profiler.begin("stage", "answer_filter")
            if profiler is not None
            else None
        )
        answers = Relation(query.name, query.arity)
        source = relations.get(query.predicate)
        if source is None:
            source = self.database.get(query.predicate)
        if source is not None:
            for row in source:
                if unify_sequences(query.args, row) is not None:
                    answers.add(row)
        if profiler is not None:
            profiler.end(filter_span, answers=len(answers))
        return answers

    def _apply_residual_constraints(
        self, plan: QueryPlan, answers: Relation, counters: Counters
    ) -> Relation:
        """Filter answers by the query's comparison constraints.

        Strategies that push constraints already guarantee their
        answers satisfy them, but pushing is an optimization — the
        final filter is always applied so every strategy returns the
        same answer set.
        """
        if not plan.constraints:
            return answers
        filtered = Relation(answers.name, answers.arity)
        for row in answers:
            binding: Substitution = {}
            ok = unify_sequences(plan.query.args, row, binding)
            if ok is None:
                continue
            satisfied = True
            for constraint in plan.constraints:
                found = False
                for _ in self.registry.solve(constraint, ok):
                    found = True
                    break
                if not found:
                    satisfied = False
                    break
            if satisfied:
                filtered.add(row)
            else:
                counters.pruned_tuples += 1
        return filtered

"""Chain-split partial evaluation with constraint pushing (Alg. 3.3).

Buffered evaluation (Algorithm 3.2) buffers *every* intermediate value
shared between the split portions of a chain.  When the delayed portion
consists of **monotone accumulators** — the running fare ``sum`` and the
route-list ``cons`` of the ``travel`` example — partial evaluation does
better: it folds the delayed portion *during the descent*, keeping only
the accumulated value per derivation.  That enables the paper's
constraint pushing: a query bound like ``F =< 600`` on a monotonically
nondecreasing sum prunes every partial derivation whose accumulated
fare already exceeds the bound ("the continued search following this
intermediate tuple will be hopeless"), which is also what makes the
evaluation terminate on cyclic flight networks.

Scope: the delayed portion must reduce entirely to accumulators (after
the split).  Delayed literals that genuinely need the recursive call's
output (e.g. a connection-time comparison against the sub-trip's
departure) are not foldable; for those, use
:class:`~repro.core.buffered.BufferedChainEvaluator` — the planner
makes that choice automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.terms import Term, Var, is_ground
from ..datalog.unify import (
    Substitution,
    apply_substitution,
    unify_sequences,
)
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.joins import evaluate_body, order_body
from ..engine.relation import Relation
from ..analysis.chains import CompiledRecursion
from ..analysis.finiteness import PathSplit, split_path
from .pushing import (
    Accumulator,
    PushedConstraint,
    detect_accumulators,
    push_constraints,
)

__all__ = ["PartialChainEvaluator", "PartialEvaluationError"]


class PartialEvaluationError(ValueError):
    """The recursion/query does not fit partial chain-split
    evaluation."""


# Head-position kinds (see module docstring of the planner).
_BOUND = "bound"  # ground in the query: answers carry the query value
_PASS = "passthrough"  # head var reappears as the same rec arg: exit value
_ACC = "accumulator"  # folded during descent
_LOCAL = "local"  # bound by the evaluable portion at the root level


@dataclass
class _Frame:
    """One partial derivation: the current call's bound arguments, the
    folded accumulator values, and the root-level local bindings."""

    call: Dict[str, Term]
    acc: Tuple[object, ...]
    root_locals: Tuple[Tuple[int, Term], ...]
    depth: int

    def key(self) -> Tuple[object, ...]:
        call_key = tuple(sorted(self.call.items(), key=lambda kv: kv[0]))
        acc_key = tuple(
            tuple(v) if isinstance(v, list) else v for v in self.acc
        )
        return (call_key, acc_key, self.root_locals)


class PartialChainEvaluator:
    """Algorithm 3.3 over a compiled single-chain recursion."""

    def __init__(
        self,
        database: Database,
        compiled: CompiledRecursion,
        registry: Optional[BuiltinRegistry] = None,
        constraints: Sequence[Literal] = (),
        split: Optional[PathSplit] = None,
        max_depth: int = 10_000,
        tracer=None,
        profiler=None,
        budget=None,
    ):
        self.database = database
        self.compiled = compiled
        self.registry = registry if registry is not None else default_registry()
        self.constraints = list(constraints)
        self.max_depth = max_depth
        # Optional observe.Tracer: one descent event per frontier level.
        self.tracer = tracer
        # Optional profile.SpanProfiler, same discipline as the tracer.
        self.profiler = profiler
        # Optional resilience.Budget: checked per descent level, per
        # admitted answer, and per streamed substitution.
        self.budget = budget
        self._injected_split = split
        chains = compiled.generating_chains()
        if len(chains) != 1:
            raise PartialEvaluationError(
                f"partial evaluation requires a single-chain recursion; "
                f"{compiled.predicate} has {len(chains)} generating chains"
            )
        self.chain = chains[0]
        if not all(isinstance(a, Var) for a in compiled.head_args):
            raise PartialEvaluationError(
                "partial evaluation requires a rectified recursion"
            )

    # ------------------------------------------------------------------
    def evaluate(self, query: Literal) -> Tuple[Relation, Counters]:
        if query.predicate != self.compiled.predicate:
            raise PartialEvaluationError(
                f"query {query} is not on {self.compiled.predicate}"
            )
        counters = Counters()
        profiler = self.profiler
        run_span = (
            profiler.begin("evaluate", "partial_chain")
            if profiler is not None
            else None
        )
        try:
            return self._evaluate(query, counters)
        finally:
            if profiler is not None:
                profiler.end(
                    run_span,
                    derived=counters.derived_tuples,
                    pruned=counters.pruned_tuples,
                )

    def _evaluate(
        self, query: Literal, counters: Counters
    ) -> Tuple[Relation, Counters]:
        profiler = self.profiler
        if profiler is not None:
            setup_span = profiler.begin("stage", "descent_setup")
        head_args = self.compiled.head_args
        rec_args = self.compiled.rec_args
        rec_literal = self.compiled.recursive_literal
        lookup = self.database.get

        bound_positions = {
            i for i, arg in enumerate(query.args) if is_ground(arg)
        }
        entry_bound = {head_args[p].name for p in bound_positions}

        split = self._injected_split
        if split is None:
            split = split_path(
                self.chain, entry_bound, rec_literal, self.registry, self.database
            )
        accumulators = detect_accumulators(self.compiled, split)
        non_acc = [
            lit
            for lit in split.delayed
            if all(lit is not acc.literal for acc in accumulators)
        ]
        if non_acc:
            residual = ", ".join(str(l) for l in non_acc)
            raise PartialEvaluationError(
                f"delayed portion has non-accumulator literals ({residual}); "
                "use buffered evaluation instead"
            )

        kinds = self._classify_positions(bound_positions, accumulators)
        acc_by_position = {a.head_position: i for i, a in enumerate(accumulators)}
        pushed, residual_constraints = push_constraints(
            self.constraints, query, accumulators
        )

        evaluable_order = order_body(
            split.evaluable, self.registry, initially_bound=entry_bound
        )

        # ---- descent with folding ---------------------------------------
        root_call = {
            head_args[p].name: query.args[p] for p in bound_positions
        }
        start = _Frame(
            call=root_call,
            acc=tuple(a.identity() for a in accumulators),
            root_locals=(),
            depth=0,
        )
        answers = Relation(query.name, query.arity)
        frontier: List[_Frame] = [start]
        seen: Set[Tuple[object, ...]] = {start.key()}
        tracer = self.tracer
        depth = 0
        if profiler is not None:
            profiler.end(setup_span)
        while frontier:
            if depth > self.max_depth:
                raise PartialEvaluationError(
                    f"descent exceeded max depth {self.max_depth}; on cyclic "
                    "data, push a termination constraint (Algorithm 3.3, "
                    "step 4)"
                )
            depth += 1
            if self.budget is not None:
                self.budget.check_round(depth, counters)
            if profiler is not None:
                level_span = profiler.begin("stage", f"descent L{depth}")
            level_counts = (
                [0] * len(evaluable_order) if tracer is not None else None
            )
            pruned_before = counters.pruned_tuples
            next_frontier: List[_Frame] = []
            for frame in frontier:
                self._try_exit(
                    frame,
                    query,
                    kinds,
                    accumulators,
                    acc_by_position,
                    residual_constraints,
                    answers,
                    counters,
                )
                seed: Substitution = dict(frame.call)
                for solution in evaluate_body(
                    evaluable_order, lookup, self.registry, seed, counters,
                    stage_counts=level_counts, budget=self.budget,
                ):
                    new_acc: List[object] = []
                    admissible = True
                    for index, accumulator in enumerate(accumulators):
                        increment = apply_substitution(
                            Var(accumulator.increment_var), solution
                        )
                        if not is_ground(increment):
                            raise PartialEvaluationError(
                                f"accumulator increment {accumulator.increment_var} "
                                "not bound by the evaluable portion"
                            )
                        value = accumulator.step(frame.acc[index], increment)
                        new_acc.append(value)
                    for constraint in pushed:
                        index = accumulators.index(constraint.accumulator)
                        measure = constraint.accumulator.measure(new_acc[index])
                        if not constraint.admits(measure):
                            admissible = False
                            break
                    if not admissible:
                        counters.pruned_tuples += 1
                        continue
                    child_call: Dict[str, Term] = {}
                    for p, rec_arg in enumerate(rec_args):
                        value = apply_substitution(rec_arg, solution)
                        if is_ground(value):
                            child_call[head_args[p].name] = value
                    if frame.depth == 0:
                        locals_captured = tuple(
                            sorted(
                                (p, apply_substitution(head_args[p], solution))
                                for p, kind in kinds.items()
                                if kind == _LOCAL
                            )
                        )
                        for _, value in locals_captured:
                            if not is_ground(value):
                                raise PartialEvaluationError(
                                    "root-level local head value not bound by "
                                    "the evaluable portion"
                                )
                    else:
                        locals_captured = frame.root_locals
                    child = _Frame(
                        call=child_call,
                        acc=tuple(new_acc),
                        root_locals=locals_captured,
                        depth=frame.depth + 1,
                    )
                    child_key = child.key()
                    if child_key not in seen:
                        seen.add(child_key)
                        next_frontier.append(child)
            if profiler is not None:
                profiler.end(
                    level_span,
                    seeds=len(frontier),
                    spawned=len(next_frontier),
                    pruned=counters.pruned_tuples - pruned_before,
                )
            if tracer is not None:
                tracer.body_evaluated(
                    "descent",
                    evaluable_order,
                    level_counts,
                    seeds=len(frontier),
                    initially_bound=sorted(entry_bound),
                    depth=depth,
                    spawned=len(next_frontier),
                    pruned=counters.pruned_tuples - pruned_before,
                )
            frontier = next_frontier
        return answers, counters

    # ------------------------------------------------------------------
    def _classify_positions(
        self,
        bound_positions: Set[int],
        accumulators: Sequence[Accumulator],
    ) -> Dict[int, str]:
        head_args = self.compiled.head_args
        rec_args = self.compiled.rec_args
        acc_positions = {a.head_position for a in accumulators}
        kinds: Dict[int, str] = {}
        for p, head_arg in enumerate(head_args):
            if p in bound_positions:
                kinds[p] = _BOUND
            elif p in acc_positions:
                kinds[p] = _ACC
            elif (
                isinstance(rec_args[p], Var)
                and rec_args[p].name == head_arg.name
            ):
                kinds[p] = _PASS
            else:
                kinds[p] = _LOCAL
        return kinds

    def _try_exit(
        self,
        frame: _Frame,
        query: Literal,
        kinds: Dict[int, str],
        accumulators: Sequence[Accumulator],
        acc_by_position: Dict[int, int],
        residual_constraints: Sequence[Literal],
        answers: Relation,
        counters: Counters,
    ) -> None:
        head_args = self.compiled.head_args
        lookup = self.database.get
        call_args = [
            frame.call.get(arg.name, Var(f"_Q{p}"))
            for p, arg in enumerate(head_args)
        ]
        # Ground exit facts stored in the EDB participate as exit rows;
        # each is emitted as soon as it matches (no staging list).
        stored = lookup(self.compiled.predicate)
        if stored is not None:
            from ..engine.joins import literal_solutions

            fact_literal = Literal(self.compiled.predicate.name, call_args)
            for solution in literal_solutions(fact_literal, stored, {}, counters):
                fact_row = [
                    apply_substitution(arg, solution) for arg in call_args
                ]
                if not all(is_ground(v) for v in fact_row):
                    continue
                self._emit_exit_row(
                    frame,
                    query,
                    kinds,
                    accumulators,
                    acc_by_position,
                    residual_constraints,
                    answers,
                    counters,
                    fact_row,
                )
        for exit_rule in self.compiled.exit_rules:
            unified = unify_sequences(exit_rule.head.args, call_args)
            if unified is None:
                continue
            bound_names = {
                name for name, value in unified.items() if is_ground(value)
            }
            exit_order = order_body(
                exit_rule.body, self.registry, initially_bound=bound_names
            )
            for solution in evaluate_body(
                exit_order, lookup, self.registry, unified, counters,
                budget=self.budget,
            ):
                exit_row = [
                    apply_substitution(arg, solution)
                    for arg in exit_rule.head.args
                ]
                if not all(is_ground(v) for v in exit_row):
                    continue
                self._emit_exit_row(
                    frame,
                    query,
                    kinds,
                    accumulators,
                    acc_by_position,
                    residual_constraints,
                    answers,
                    counters,
                    exit_row,
                )

    def _emit_exit_row(
        self,
        frame: _Frame,
        query: Literal,
        kinds: Dict[int, str],
        accumulators,
        acc_by_position: Dict[int, int],
        residual_constraints,
        answers: Relation,
        counters: Counters,
        exit_row,
    ) -> None:
        root_locals = dict(frame.root_locals)
        row: List[Term] = []
        valid = True
        for p, kind in sorted(kinds.items()):
            if kind == _BOUND:
                row.append(query.args[p])
            elif kind == _PASS:
                row.append(exit_row[p])
            elif kind == _ACC:
                accumulator = accumulators[acc_by_position[p]]
                row.append(
                    accumulator.finalize(
                        frame.acc[acc_by_position[p]], exit_row[p]
                    )
                )
            else:  # _LOCAL
                if frame.depth == 0:
                    row.append(exit_row[p])
                elif p in root_locals:
                    row.append(root_locals[p])
                else:
                    valid = False
                    break
        if not valid:
            return
        if unify_sequences(query.args, tuple(row)) is None:
            return
        if not self._residual_ok(query, tuple(row), residual_constraints):
            counters.pruned_tuples += 1
            return
        if answers.add(tuple(row)):
            counters.derived_tuples += 1
            if self.budget is not None:
                self.budget.check_tuple(counters)

    def _residual_ok(
        self,
        query: Literal,
        row: Tuple[Term, ...],
        residual_constraints: Sequence[Literal],
    ) -> bool:
        if not residual_constraints:
            return True
        binding: Substitution = {}
        for arg, value in zip(query.args, row):
            if isinstance(arg, Var):
                binding[arg.name] = value
        for literal in residual_constraints:
            satisfied = False
            for _ in self.registry.solve(literal, binding):
                satisfied = True
                break
            if not satisfied:
                return False
        return True

"""Magic sets — classic, and the chain-split variant (Algorithm 3.1).

The classic transformation (ref [1]) rewrites a program so that
bottom-up evaluation only derives facts relevant to the query: a
``magic_p__a`` predicate collects the bindings with which ``p`` is
called under adornment ``a``, every rule is guarded by the magic
predicate of its head, and for each IDB body literal a *magic rule*
passes the bindings sideways.

Algorithm 3.1 changes exactly one thing — the binding propagation rule.
When a body linkage is weak (join expansion ratio above the chain-split
threshold) or not finitely evaluable, the binding is *not* propagated
across it: the literal is delayed.  Delayed literals stay in the answer
rule (they are evaluated bottom-up when the recursion's results arrive)
but are excluded from every magic rule, so the magic set follows only
the strong linkages.  On ``scsg`` this turns the cross-product-like
merged-parents magic set into the small parent-descendant set (paper
Example 1.2 / §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.literals import Literal, Predicate
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term, Var, is_ground, term_variables
from ..datalog.unify import unify_sequences, apply_substitution
from ..engine.builtins import BuiltinRegistry, default_registry
from ..engine.counters import Counters
from ..engine.database import Database
from ..engine.relation import Relation
from ..engine.seminaive import EvaluationResult, SemiNaiveEvaluator
from ..analysis.adornment import (
    AdornedProgram,
    AdornedRule,
    PropagationHook,
    adorn_program,
    adorned_name,
    adornment_for_query,
)
from ..analysis.cost import CostModel

__all__ = [
    "MagicProgram",
    "magic_transform",
    "chain_split_hook",
    "MagicSetsEvaluator",
]

MAGIC_PREFIX = "magic_"


def _magic_name(name: str, adornment: str) -> str:
    return MAGIC_PREFIX + adorned_name(name, adornment)


def _bound_args(literal: Literal, adornment: str) -> Tuple[Term, ...]:
    return tuple(
        arg for arg, flag in zip(literal.args, adornment) if flag == "b"
    )


@dataclass
class MagicProgram:
    """Result of a magic transformation, ready for semi-naive."""

    program: Program
    seed_predicate: Predicate
    seed_row: Tuple[Term, ...]
    answer_predicate: Predicate
    adorned: AdornedProgram

    def magic_predicates(self) -> List[Predicate]:
        return [
            p
            for p in self.program.head_predicates()
            if p.name.startswith(MAGIC_PREFIX)
        ]


def magic_transform(
    program: Program,
    query: Literal,
    registry: Optional[BuiltinRegistry] = None,
    propagation_hook: Optional[PropagationHook] = None,
    supplementary: bool = False,
) -> MagicProgram:
    """Rewrite ``program`` for ``query`` with the magic-sets method.

    ``propagation_hook`` switches between classic (None) and
    chain-split behaviour (see :func:`chain_split_hook`).

    ``supplementary`` uses supplementary predicates: the propagated
    prefix of each rule body is materialized once as a chain of
    ``sup`` relations shared between the magic rules and the answer
    rule, instead of being re-joined per magic rule.
    """
    registry = registry if registry is not None else default_registry()
    adornment = adornment_for_query(query)
    adorned = adorn_program(
        program, query.predicate, adornment, registry, propagation_hook
    )
    rewritten = Program()

    for rule_index, adorned_rule in enumerate(adorned.rules):
        if supplementary:
            _rewrite_rule_supplementary(rewritten, adorned_rule, rule_index)
        else:
            _rewrite_rule_plain(rewritten, adorned_rule)

    # Bridge rules: ground facts of an adorned predicate live in the
    # EDB under the original name (the loader stores ground heads as
    # facts, e.g. ``isort([], []).``); each adorned predicate therefore
    # also answers from its stored relation, under the magic guard.
    for predicate, call_adornment in sorted(adorned.calls, key=str):
        args = tuple(Var(f"_B{i}") for i in range(predicate.arity))
        bound_args = tuple(
            arg for arg, flag in zip(args, call_adornment) if flag == "b"
        )
        rewritten.add(
            Rule(
                Literal(adorned_name(predicate.name, call_adornment), args),
                [
                    Literal(_magic_name(predicate.name, call_adornment), bound_args),
                    Literal(predicate.name, args),
                ],
            )
        )

    seed_name = _magic_name(query.name, adornment)
    seed_row = tuple(arg for arg in query.args if is_ground(arg))
    seed_predicate = Predicate(seed_name, len(seed_row))
    # Seed the magic set as a fact rule so semi-naive derives it in
    # round 0 (a plain EDB relation would be shadowed by the derived
    # magic relation of the same name).
    rewritten.add(Rule(Literal(seed_name, seed_row)))
    answer_predicate = Predicate(
        adorned_name(query.name, adornment), query.arity
    )
    return MagicProgram(rewritten, seed_predicate, seed_row, answer_predicate, adorned)


def _adorned_body_literal(adorned_literal) -> Literal:
    """The literal as it appears in the rewritten program: IDB
    occurrences use the adorned predicate name."""
    literal = adorned_literal.literal
    if adorned_literal.is_idb:
        return Literal(
            adorned_name(literal.name, adorned_literal.adornment),
            literal.args,
            negated=literal.negated,
        )
    return literal


def _rewrite_rule_plain(rewritten: Program, adorned_rule) -> None:
    """The textbook (non-supplementary) rewriting: each magic rule
    repeats the propagated prefix of body literals before the call."""
    rule = adorned_rule.rule
    head_adornment = adorned_rule.head_adornment
    magic_head = Literal(
        _magic_name(rule.head.name, head_adornment),
        _bound_args(rule.head, head_adornment),
    )

    # ---- answer rule ----------------------------------------------------
    answer_body: List[Literal] = [magic_head]
    for adorned_literal in adorned_rule.body:
        answer_body.append(_adorned_body_literal(adorned_literal))
    answer_head = Literal(
        adorned_name(rule.head.name, head_adornment), rule.head.args
    )
    rewritten.add(Rule(answer_head, answer_body))

    # ---- magic rules ------------------------------------------------------
    prefix: List[Literal] = [magic_head]
    for adorned_literal in adorned_rule.body:
        literal = adorned_literal.literal
        if adorned_literal.is_idb:
            # Every IDB call (negated included) seeds its magic set
            # from the propagated prefix.
            bound_args = _bound_args(literal, adorned_literal.adornment)
            magic_literal = Literal(
                _magic_name(literal.name, adorned_literal.adornment),
                bound_args,
            )
            rewritten.add(Rule(magic_literal, list(prefix)))
        if adorned_literal.propagated:
            if adorned_literal.is_idb and not literal.negated:
                prefix.append(
                    Literal(
                        adorned_name(literal.name, adorned_literal.adornment),
                        literal.args,
                    )
                )
            else:
                prefix.append(literal)


def _rewrite_rule_supplementary(
    rewritten: Program, adorned_rule, rule_index: int
) -> None:
    """Supplementary rewriting: the propagated prefix is materialized
    once per rule as a chain of sup_{rule}_{i} predicates.

    sup_{r}_{0}(V0)       :- magic_h(bound head args).
    sup_{r}_{i}(Vi)       :- sup_{r}_{i-1}(V{i-1}), b_i.     [propagated b_i]
    magic_q(bound args)   :- sup_{r}_{i-1}(V{i-1}).          [IDB b_i]
    h(args)               :- sup_{r}_{n}(Vn), delayed literals.
    """
    rule = adorned_rule.rule
    head_adornment = adorned_rule.head_adornment
    magic_head = Literal(
        _magic_name(rule.head.name, head_adornment),
        _bound_args(rule.head, head_adornment),
    )
    head_name = rule.head.name

    # Variables needed after each body position (for the head or a
    # later literal), used to keep sup arities minimal.
    head_vars = {v.name for v in rule.head.variables()}
    # Delayed (non-propagated) literals are evaluated at the very end
    # of the answer rule, so their variables stay needed through the
    # entire sup chain.
    delayed_vars: Set[str] = set()
    for adorned_literal in adorned_rule.body:
        if not adorned_literal.propagated:
            delayed_vars |= {
                v.name for v in adorned_literal.literal.variables()
            }
    later_vars: List[Set[str]] = []
    running: Set[str] = set(head_vars) | delayed_vars
    for adorned_literal in reversed(adorned_rule.body):
        later_vars.append(set(running))
        running |= {v.name for v in adorned_literal.literal.variables()}
    later_vars.reverse()
    # later_vars[i] = variables needed strictly after body literal i
    # (including the head's and every delayed literal's); all_vars
    # covers the whole rule.
    all_vars = set(running)

    def sup_literal(index: int, available: Set[str], needed: Set[str]) -> Literal:
        keep = sorted(available & needed)
        return Literal(
            f"sup_{head_name}__{head_adornment}_{rule_index}_{index}",
            tuple(Var(name) for name in keep),
        )

    available: Set[str] = {
        v.name
        for arg, flag in zip(rule.head.args, head_adornment)
        if flag == "b"
        for v in term_variables(arg)
    }
    current_sup = sup_literal(0, available, all_vars)
    rewritten.add(Rule(current_sup, [magic_head]))

    delayed: List[Literal] = []
    sup_index = 0
    for position, adorned_literal in enumerate(adorned_rule.body):
        literal = adorned_literal.literal
        if adorned_literal.is_idb:
            bound_args = _bound_args(literal, adorned_literal.adornment)
            magic_literal = Literal(
                _magic_name(literal.name, adorned_literal.adornment),
                bound_args,
            )
            rewritten.add(Rule(magic_literal, [current_sup]))
        if adorned_literal.propagated:
            sup_index += 1
            available = available | {v.name for v in literal.variables()}
            needed = later_vars[position]
            next_sup = sup_literal(sup_index, available, needed | head_vars)
            rewritten.add(
                Rule(next_sup, [current_sup, _adorned_body_literal(adorned_literal)])
            )
            current_sup = next_sup
        else:
            delayed.append(_adorned_body_literal(adorned_literal))

    answer_head = Literal(
        adorned_name(head_name, head_adornment), rule.head.args
    )
    rewritten.add(Rule(answer_head, [current_sup, *delayed]))


def chain_split_hook(cost_model: CostModel) -> PropagationHook:
    """Algorithm 3.1's modified binding-propagation rule as an
    adornment hook: consult the cost model for every non-IDB body
    literal; IDB literals keep default propagation (the recursion's
    own binding passing is what the adornment computes)."""

    def hook(literal: Literal, bound: Set[str], is_idb: bool) -> Optional[bool]:
        if is_idb:
            return None
        decision = cost_model.decide(literal, bound)
        return decision.propagate

    return hook


class MagicSetsEvaluator:
    """Run a query with magic sets (classic or chain-split) and
    semi-naive evaluation of the rewritten program."""

    def __init__(
        self,
        database: Database,
        registry: Optional[BuiltinRegistry] = None,
        cost_model: Optional[CostModel] = None,
        chain_split: bool = False,
        supplementary: bool = False,
        tracer=None,
        profiler=None,
        budget=None,
    ):
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        if chain_split and cost_model is None:
            cost_model = CostModel(database, self.registry)
        self.cost_model = cost_model
        self.chain_split = chain_split
        self.supplementary = supplementary
        # Optional observe.Tracer, handed down to the semi-naive run
        # over the rewritten program.
        self.tracer = tracer
        # Optional profile.SpanProfiler: a plan span for the rewrite,
        # then handed down like the tracer.
        self.profiler = profiler
        # Optional resilience.Budget, handed down the same way.  Magic
        # tuples are derived tuples, so an un-split blowup trips the
        # tuple ceiling while the magic set is still being computed.
        self.budget = budget

    def rewrite(self, query: Literal) -> MagicProgram:
        hook = (
            chain_split_hook(self.cost_model)
            if self.chain_split and self.cost_model is not None
            else None
        )
        return magic_transform(
            self.database.program,
            query,
            self.registry,
            propagation_hook=hook,
            supplementary=self.supplementary,
        )

    def _scratch(self, magic: MagicProgram) -> Database:
        """A throwaway database running the rewritten program over the
        original EDB relations (shared read-only; the magic seed is a
        fact rule inside the rewritten program)."""
        scratch = Database()
        scratch.program = magic.program
        scratch.relations = dict(self.database.relations)
        return scratch

    def evaluate(
        self,
        query: Literal,
        stop_condition: Optional[Callable[[Relation], bool]] = None,
    ) -> Tuple[Relation, Counters, MagicProgram]:
        """Answers to ``query`` (as a relation over its arguments),
        the work counters, and the rewritten program for inspection.

        ``stop_condition``, when given, is called with the answer
        relation derived so far after each new answer tuple; returning
        True aborts the semi-naive fixpoint mid-round (existence
        checking, §5).  The answers accumulated up to the abort are
        still returned.
        """
        profiler = self.profiler
        if profiler is not None:
            rewrite_span = profiler.begin("plan", "magic_rewrite")
        magic = self.rewrite(query)
        if profiler is not None:
            profiler.end(rewrite_span, rules=len(magic.program))
        scratch = self._scratch(magic)
        if self.tracer is not None:
            self.tracer.phase(
                "magic_rewrite",
                query=str(query),
                chain_split=self.chain_split,
                supplementary=self.supplementary,
                rules=len(magic.program),
                seed=str(magic.seed_predicate),
                answer=str(magic.answer_predicate),
            )

        seminaive_stop = None
        if stop_condition is not None:
            answer_predicate = magic.answer_predicate

            def seminaive_stop(derived) -> bool:
                relation = derived.get(answer_predicate)
                return relation is not None and stop_condition(relation)

        result = SemiNaiveEvaluator(
            scratch, self.registry, tracer=self.tracer, profiler=profiler,
            budget=self.budget,
        ).evaluate(magic.program, stop_condition=seminaive_stop)
        answers_full = result.relation(
            magic.answer_predicate.name, magic.answer_predicate.arity
        )
        if profiler is not None:
            filter_span = profiler.begin("stage", "answer_filter")
        answers = Relation(query.name, query.arity)
        for row in answers_full:
            if unify_sequences(query.args, row) is not None:
                answers.add(row)
        if profiler is not None:
            profiler.end(filter_span, answers=len(answers))
        return answers, result.counters, magic

    def magic_set_sizes(self, query: Literal) -> Dict[str, int]:
        """Sizes of every derived magic predicate — the paper's measure
        of binding-propagation cost."""
        magic = self.rewrite(query)
        scratch = self._scratch(magic)
        result = SemiNaiveEvaluator(scratch, self.registry).evaluate(magic.program)
        sizes: Dict[str, int] = {}
        for predicate, relation in result.relations.items():
            if predicate.name.startswith(MAGIC_PREFIX):
                sizes[str(predicate)] = len(relation)
        return sizes
